"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], title: str | None = None) -> str:
    """Fixed-width table over a list of row dicts (union of keys, in order)."""
    if not rows:
        return f"{title or ''}\n(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row_cells in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def render_rows(rows: Sequence[Mapping[str, Any]], title: str) -> str:
    """Format and also print (benchmarks print their tables as they run)."""
    text = format_table(rows, title)
    print("\n" + text + "\n")
    return text
