"""ASCII charts for benchmark output.

The preliminary paper has no figures; these charts are the terminal-native
equivalent for our measured series — a bar chart for sweeps and a dual
log-scale series comparison for the polynomial-vs-exponential headline.
Used by the benchmarks (visible with ``pytest -s``) and the examples.
"""

from __future__ import annotations

import math
from typing import Sequence


def bar_chart(
    labels: Sequence,
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, linear scale."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return f"{title or ''}\n(no data)"
    top = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / top * width))
        lines.append(f"{str(label):>{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def log_series_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 56,
    title: str | None = None,
) -> str:
    """Compare growth curves on a log scale, one row per x value.

    Each series' value is plotted as a marker (its first letter) at a
    column proportional to ``log(value)`` — exponential growth shows as a
    marker marching right in even steps, polynomial growth as decelerating
    steps.  Exactly the visual the E5 crossover needs.
    """
    if not series:
        return f"{title or ''}\n(no data)"
    lows = [min(v for v in vs if v > 0) for vs in series.values()]
    highs = [max(vs) for vs in series.values()]
    lo, hi = math.log(min(lows)), math.log(max(highs))
    span = max(hi - lo, 1e-9)

    def column(value: float) -> int:
        return round((math.log(max(value, 1e-9)) - lo) / span * (width - 1))

    lines = [title] if title else []
    legend = ", ".join(f"{name[0]}={name}" for name in series)
    lines.append(f"(log scale; {legend})")
    x_width = max(len(str(x)) for x in xs)
    for index, x in enumerate(xs):
        row = [" "] * width
        for name, values in series.items():
            col = column(values[index])
            marker = name[0]
            row[col] = "*" if row[col] not in (" ", marker) else marker
        lines.append(f"{str(x):>{x_width}} |{''.join(row)}|")
    return "\n".join(lines)
