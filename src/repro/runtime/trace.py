"""Operation traces.

A :class:`Trace` records two parallel histories of a simulation:

- the sequence of atomic :class:`~repro.runtime.events.OpEvent`\\ s — the
  global-time interleaving itself; and
- the set of high-level :class:`~repro.runtime.events.OpSpan`\\ s — scan /
  write executions of the scannable memory, read / write executions of
  constructed registers — each bracketing the steps of its constituent
  atomic operations.

The property checkers (snapshot P1–P3, linearizability of register
constructions) consume spans; debugging tools consume events.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.runtime.events import OpEvent, OpSpan


class _NullSpanMeta(dict):
    """A ``meta`` dict that silently discards writes (shared, stays empty)."""

    __slots__ = ()

    def __setitem__(self, key: Any, value: Any) -> None:
        pass

    def setdefault(self, key: Any, default: Any = None) -> Any:
        return default

    def update(self, *args: Any, **kwargs: Any) -> None:
        pass


class NullSpan:
    """Shared no-op stand-in returned by ``ctx.begin_span`` when nothing
    records.

    With both event and span recording off, a span would be allocated,
    id-stamped and clock-stamped only to be thrown away; protocol code
    still *writes* to it (``span.meta["wseq"] = ...``) but nothing ever
    reads it back.  This singleton absorbs those writes for free, which is
    what makes disabled tracing zero-cost on the per-operation hot path.
    """

    __slots__ = ()

    span_id = -1
    pid = -1
    kind = ""
    target = ""
    invoke_step = None
    response_step = None
    argument = None
    result = None
    meta = _NullSpanMeta()
    is_open = True

    def precedes(self, other: Any) -> bool:
        return False

    def overlaps(self, other: Any) -> bool:
        return False


#: The shared no-op span (identity-checked by ``ProcessContext.end_span``).
NULL_SPAN = NullSpan()


class Trace:
    """Recorded history of one simulation run."""

    def __init__(self, record_events: bool = True, record_spans: bool = True):
        self.record_events = record_events
        self.record_spans = record_spans
        self.events: list[OpEvent] = []
        self.spans: list[OpSpan] = []
        self._next_span_id = 0

    # -- atomic events ----------------------------------------------------

    def add_event(self, event: OpEvent) -> None:
        if self.record_events:
            self.events.append(event)

    # -- high-level spans --------------------------------------------------

    def begin_span(
        self, pid: int, kind: str, target: str, argument: Any, step: int | None
    ) -> OpSpan:
        span = OpSpan(
            span_id=self._next_span_id,
            pid=pid,
            kind=kind,
            target=target,
            invoke_step=step,
            argument=argument,
        )
        self._next_span_id += 1
        if self.record_spans:
            self.spans.append(span)
        return span

    def end_span(self, span: OpSpan, step: int, result: Any) -> None:
        if span.invoke_step is None:
            # The span performed no atomic operation (e.g. a cached
            # result): it occupies a single instant.
            span.invoke_step = step
        span.response_step = step
        span.result = result

    # -- queries -----------------------------------------------------------

    def spans_of_kind(self, kind: str, target: str | None = None) -> list[OpSpan]:
        """All completed spans of a given kind (optionally one object)."""
        return [
            s
            for s in self.spans
            if s.kind == kind
            and not s.is_open
            and (target is None or s.target == target)
        ]

    def spans_by_pid(self, pid: int) -> list[OpSpan]:
        return [s for s in self.spans if s.pid == pid]

    def events_by_pid(self, pid: int) -> list[OpEvent]:
        return [e for e in self.events if e.pid == pid]

    def render(self, limit: int | None = None) -> str:
        """Human-readable dump of the first ``limit`` atomic events."""
        if not self.events and not self.record_events:
            # The silent-empty footgun: event recording is off by default
            # (protocol runs are long), so say so instead of printing "".
            return (
                "(no events: event recording is off — construct the "
                "Simulation with record_events=True)"
            )
        selected: Iterable[OpEvent] = (
            self.events if limit is None else self.events[:limit]
        )
        return "\n".join(str(e) for e in selected)

    def __len__(self) -> int:
        return len(self.events)
