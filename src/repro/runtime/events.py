"""Event records produced by the simulator.

Three kinds of records are used throughout the library:

- :class:`OpIntent` — the *pending* atomic operation of a process, i.e. the
  value the process generator yielded and that will take effect the next time
  the scheduler resumes that process.  Strong adaptive adversaries inspect
  intents when choosing whom to schedule.
- :class:`OpEvent` — a single *atomic* operation that took effect at a given
  global step.  The sequence of these events is the global-time model of the
  paper: operation ``a`` precedes ``b`` iff ``a.step < b.step``.
- :class:`OpSpan` — a *high-level* operation execution (e.g. one ``scan`` of
  the scannable memory) spanning many atomic steps.  Spans carry invocation
  and response step indices and are what the paper's "precedes" / "can
  affect" / "potentially coexists" relations are defined over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class OpIntent:
    """The next atomic operation a process will perform when scheduled.

    One intent is allocated per atomic step (a register's ``read``/``write``
    generator yields it before taking effect), so the class is slotted: the
    step loop is the hottest allocation site in the simulator.

    Attributes:
        pid: the process about to act.
        kind: operation kind, e.g. ``"read"``, ``"write"``, ``"flip"``.
        target: name of the shared object / register acted on.
        payload: operation argument (value to be written, etc.), or ``None``.
    """

    pid: int
    kind: str
    target: str
    payload: Any = None


@dataclass(frozen=True, slots=True)
class OpEvent:
    """One atomic operation that took effect at global step ``step``."""

    step: int
    pid: int
    kind: str
    target: str
    value: Any = None

    def __str__(self) -> str:
        return f"[{self.step}] p{self.pid} {self.kind} {self.target} = {self.value!r}"


@dataclass(slots=True)
class OpSpan:
    """A high-level operation execution bracketing many atomic steps.

    A span is *open* until :attr:`response_step` is set.  The paper's
    relations over operation executions are derived from spans:

    - ``a`` *precedes* ``b``  iff ``a.response_step < b.invoke_step``;
    - ``a`` *potentially coexists* with ``b`` (Definition 2.1 requires, in
      particular) that ``a`` does not entirely follow ``b`` and is not
      separated from ``b`` by a full later operation of the same process.
    """

    span_id: int
    pid: int
    kind: str
    target: str
    invoke_step: int | None
    response_step: int | None = None
    argument: Any = None
    result: Any = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        return self.response_step is None

    def precedes(self, other: "OpSpan") -> bool:
        """Real-time order: this span completed before ``other`` began.

        A span's invocation instant is stamped at its *first atomic
        operation* (not at generator creation), so an operation a process
        has merely queued up does not yet overlap anything.
        """
        if self.response_step is None or other.invoke_step is None:
            return False
        return self.response_step < other.invoke_step

    def overlaps(self, other: "OpSpan") -> bool:
        """Neither span precedes the other (they share a global instant)."""
        return not self.precedes(other) and not other.precedes(self)

    def __str__(self) -> str:
        end = "..." if self.response_step is None else str(self.response_step)
        return (
            f"p{self.pid} {self.kind}({self.argument!r}) on {self.target} "
            f"[{self.invoke_step}, {end}] -> {self.result!r}"
        )
