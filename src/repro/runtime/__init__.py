"""Asynchronous shared-memory simulation runtime.

The paper's model (following Lamport's global-time model, [L86a], [B88]) is a
set of ``n`` completely asynchronous processes whose *atomic* operations on
shared memory interleave arbitrarily.  This package provides that model as a
deterministic, seed-replayable simulator:

- a *process* is a Python generator; every ``yield`` marks exactly one atomic
  shared-memory operation (see :mod:`repro.runtime.process`);
- a *scheduler* (possibly a strong adaptive adversary with full knowledge of
  memory and pending operations) picks which process performs the next atomic
  step (see :mod:`repro.runtime.scheduler`, :mod:`repro.runtime.adversary`);
- the :class:`~repro.runtime.simulation.Simulation` driver advances one step
  at a time, records a :class:`~repro.runtime.trace.Trace` of operation
  events, and collects per-process decisions.

Because every correctness and complexity claim in the paper is a statement
about interleavings of atomic register operations, this interleaving
simulator reproduces the paper's execution model exactly; true hardware
parallelism is not required.
"""

from repro.runtime.events import OpEvent, OpIntent, OpSpan
from repro.runtime.process import ProcessContext, ProcessState
from repro.runtime.rng import derive_rng, derive_seed
from repro.runtime.scheduler import (
    CrashPlan,
    RandomScheduler,
    RecoveryPlan,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
    TracingScheduler,
)
from repro.runtime.adversary import (
    Adversary,
    ScanStarvingAdversary,
    SplitAdversary,
    WalkBalancingAdversary,
)
from repro.runtime.simulation import Simulation, SimulationOutcome, StepBudgetExceeded
from repro.runtime.trace import Trace

__all__ = [
    "Adversary",
    "CrashPlan",
    "OpEvent",
    "OpIntent",
    "OpSpan",
    "ProcessContext",
    "ProcessState",
    "RandomScheduler",
    "RecoveryPlan",
    "RoundRobinScheduler",
    "ScanStarvingAdversary",
    "Scheduler",
    "ScriptedScheduler",
    "Simulation",
    "SimulationOutcome",
    "SplitAdversary",
    "StepBudgetExceeded",
    "Trace",
    "TracingScheduler",
    "WalkBalancingAdversary",
    "derive_rng",
    "derive_seed",
]
