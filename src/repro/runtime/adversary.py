"""Strong adaptive adversaries.

The adversary of the paper's model chooses the schedule *online* with full
knowledge of shared memory, all local states, and the operation each process
is about to perform.  (It cannot, however, see the outcome of a local coin
flip before the flip happens — but since a flip is local computation, the
flip's outcome is already reflected in the process's *pending* write, and the
adversary may observe that pending write.  This is exactly the power that
makes weak shared coins necessary.)

Concrete adversaries:

- :class:`WalkBalancingAdversary` — attacks the shared coin (§3): schedules
  the process whose pending operation moves the random walk closest to zero,
  maximising the time until a barrier is crossed and maximising the chance
  that two processes read opposite-side values.
- :class:`SplitAdversary` — attacks consensus: keeps the two preference
  camps advancing in lock-step so that neither value's supporters ever trail
  far enough for the other side to decide.
- :class:`ScanStarvingAdversary` — attacks the scannable memory's scan loop:
  runs one designated victim rarely, so its double-collects keep being
  invalidated by fresh writes (demonstrates that ``scan`` alone is not
  wait-free, §2.2).
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class Adversary(Scheduler):
    """Base class for adaptive adversaries (full-knowledge schedulers)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = derive_rng(seed, type(self).__name__)

    def reset(self) -> None:
        self._rng = derive_rng(self.seed, type(self).__name__)

    @staticmethod
    def pending(sim: "Simulation", pid: int):
        """The operation ``pid`` will perform when next scheduled."""
        return sim.processes[pid].pending


class WalkBalancingAdversary(Adversary):
    """Keeps a shared random walk as close to zero as possible.

    Parameters:
        coin_name: key of the coin object in ``sim.shared``; the object must
            expose ``true_walk_value()`` and ``counter_of(pid)`` and its
            counter-write intents must carry the new counter value as
            payload with target ``f"{coin_name}.c[{pid}]"``.
    """

    def __init__(self, coin_name: str = "coin", seed: int = 0):
        super().__init__(seed)
        self.coin_name = coin_name

    def _delta(self, sim: "Simulation", pid: int) -> int:
        """Walk-value change if ``pid``'s pending operation executes now."""
        intent = self.pending(sim, pid)
        coin = sim.shared.get(self.coin_name)
        if intent is None or coin is None:
            return 0
        if intent.kind == "write" and intent.target == f"{self.coin_name}.c[{pid}]":
            return int(intent.payload) - coin.counter_of(pid)
        return 0

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        coin = sim.shared.get(self.coin_name)
        if coin is None:
            return self._rng.choice(runnable)
        walk = coin.true_walk_value()
        best = min(runnable, key=lambda pid: (abs(walk + self._delta(sim, pid)), pid))
        return best


class CoinDisagreementAdversary(Adversary):
    """Tries to *split* a shared coin: one victim sees heads, others tails.

    The classic hide-and-release attack that Lemma 3.1's 1/b bound is
    priced against:

    1. **pump-up** — starve the victim; among the rest, let +1 writes land
       and hold pending −1 writes, until the walk exceeds ``+b·n``;
    2. **victim-read** — run the victim alone; its collect sums past the
       barrier and it decides *heads*;
    3. **pump-down** — symmetric: release the hoarded −1s and hold +1s
       (completing intermediate reads is fine — they return undecided and
       yield more downward material) until the walk falls below ``−b·n``;
    4. **drain** — let everyone else read *tails*.

    The attack succeeds only when the walk cooperates with the filtering —
    the coin's whole point is that the success probability is bounded by
    ~1/b — so benchmarks report the *achieved* disagreement rate as a
    lower-bound companion to Lemma 3.1's upper bound.
    """

    def __init__(self, coin_name: str = "coin", victim: int = 0, seed: int = 0):
        super().__init__(seed)
        self.coin_name = coin_name
        self.victim = victim
        self._phase = "pump-up"

    def reset(self) -> None:
        super().reset()
        self._phase = "pump-up"

    def _delta(self, sim: "Simulation", pid: int):
        """+1/-1 if the pending op is a counter write, None otherwise."""
        intent = self.pending(sim, pid)
        coin = sim.shared.get(self.coin_name)
        if intent is None or coin is None:
            return None
        if intent.kind == "write" and intent.target == f"{self.coin_name}.c[{pid}]":
            return int(intent.payload) - coin.counter_of(pid)
        return None

    def _pick(self, sim, candidates: list[int], direction: int) -> int | None:
        """A candidate whose pending write moves the walk ``direction``-ward,
        else a candidate mid-read, else None (only wrong-way writes left)."""
        writers = [p for p in candidates if self._delta(sim, p) == direction]
        if writers:
            return writers[0]
        readers = [p for p in candidates if self._delta(sim, p) is None]
        if readers:
            return self._rng.choice(readers)
        return None

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        coin = sim.shared.get(self.coin_name)
        if coin is None:
            return self._rng.choice(runnable)
        walk = coin.true_walk_value()
        barrier = coin.b_barrier * coin.n
        others = [p for p in runnable if p != self.victim]

        if self._phase == "pump-up":
            if walk > barrier:
                self._phase = "victim-read"
            elif others:
                chosen = self._pick(sim, others, +1)
                return chosen if chosen is not None else self._rng.choice(others)

        if self._phase == "victim-read":
            if self.victim in runnable:
                return self.victim
            self._phase = "pump-down"

        if self._phase == "pump-down":
            if walk < -barrier or not others:
                self._phase = "drain"
            else:
                chosen = self._pick(sim, others, -1)
                return chosen if chosen is not None else self._rng.choice(others)

        return self._rng.choice(runnable)


class SplitAdversary(Adversary):
    """Alternates between the two preference camps of a consensus run.

    Parameters:
        pref_of: callable mapping ``(sim, pid)`` to the process's currently
            *written* preference (or ``None`` if undecided / not yet
            written).  Consensus modules provide suitable readers.
    """

    def __init__(self, pref_of: Callable[["Simulation", int], Any], seed: int = 0):
        super().__init__(seed)
        self.pref_of = pref_of
        self._turn = 0
        self._camp_rr: dict[Any, int] = {}

    def reset(self) -> None:
        super().reset()
        self._turn = 0
        self._camp_rr = {}

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        camps: dict[Any, list[int]] = {}
        for pid in runnable:
            camps.setdefault(self.pref_of(sim, pid), []).append(pid)
        values = [v for v in camps if v in (0, 1)]
        if len(values) < 2:
            return self._rng.choice(runnable)
        # Alternate camps; round-robin inside each camp so both camps make
        # balanced progress and neither trails far behind the other.
        value = sorted(values)[self._turn % 2]
        self._turn += 1
        members = sorted(camps[value])
        index = self._camp_rr.get(value, 0) % len(members)
        self._camp_rr[value] = index + 1
        return members[index]


class LockstepAdversary(Adversary):
    """Runs the protocol in synchronized *phases* (the classic worst case).

    In every phase, each alive process first runs up to (but not through)
    its next *cell write* — the write to its own slot of the shared memory
    ``memory_name`` — so all of them compute their next state from the
    *same* pre-phase memory; only then are all the pending cell writes
    released together.

    This is the textbook bad schedule for local-coin protocols: all g
    conflicted leaders re-draw their preferences in the same phase without
    seeing each other's draws, so leaving the round requires g independent
    coins to agree — probability ``2^{-(g-1)}``, the exponential regime of
    [A88].  Shared-coin protocols are immune (that is the paper's point),
    which makes this adversary the contrast class for experiments E5/E10.
    """

    _ADVANCE, _RELEASE = "advance", "release"

    def __init__(self, memory_name: str = "mem", seed: int = 0):
        super().__init__(seed)
        self.memory_name = memory_name
        self._phase = self._ADVANCE
        self._to_release: list[int] = []

    def reset(self) -> None:
        super().reset()
        self._phase = self._ADVANCE
        self._to_release = []

    def _at_cell_write(self, sim: "Simulation", pid: int) -> bool:
        intent = self.pending(sim, pid)
        return (
            intent is not None
            and intent.kind == "write"
            and intent.target == f"{self.memory_name}.V[{pid}]"
        )

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        if self._phase == self._RELEASE:
            self._to_release = [p for p in self._to_release if p in runnable]
            if self._to_release:
                return self._to_release.pop(0)
            self._phase = self._ADVANCE
        # Advance phase: run anyone not yet parked at its cell write.
        candidates = [p for p in runnable if not self._at_cell_write(sim, p)]
        if candidates:
            return self._rng.choice(candidates)
        # Everyone alive is parked: release all the writes back to back.
        self._phase = self._RELEASE
        self._to_release = sorted(runnable)
        return self._to_release.pop(0)


class ScanStarvingAdversary(Adversary):
    """Schedules ``victim`` only once every ``period`` steps.

    All other processes are scheduled uniformly at random in between, so the
    victim's ``scan`` keeps observing changed values/arrows and retrying.
    """

    def __init__(self, victim: int, period: int = 50, seed: int = 0):
        super().__init__(seed)
        self.victim = victim
        self.period = max(2, period)
        self._count = 0

    def reset(self) -> None:
        super().reset()
        self._count = 0

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        self._count += 1
        others = [pid for pid in runnable if pid != self.victim]
        if not others:
            return self.victim
        if self.victim in runnable and self._count % self.period == 0:
            return self.victim
        return self._rng.choice(others)
