"""The simulation driver.

A :class:`Simulation` owns ``n`` processes, a scheduler, an optional crash
plan and a trace.  Each call to :meth:`Simulation.step` lets the scheduler
pick one runnable process, which then performs exactly one atomic
shared-memory operation (plus any amount of local computation).  The run
ends when every process has finished or crashed, or when the step budget is
exhausted.

The simulation also keeps a registry of the shared objects created for it
(:meth:`register_shared`); adversaries use the registry to inspect memory,
and the memory-boundedness audit (experiment E6) uses it to measure the
largest value any register ever held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.runtime.events import OpEvent
from repro.runtime.process import Process, ProcessContext, ProcessProgram, ProcessState
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import CrashPlan, RandomScheduler, Scheduler
from repro.runtime.trace import Trace


class StepBudgetExceeded(Exception):
    """Raised when a run does not terminate within its step budget."""


@dataclass
class SimulationOutcome:
    """Result of :meth:`Simulation.run`."""

    decisions: dict[int, Any]
    total_steps: int
    steps_by_pid: dict[int, int]
    finished: bool
    crashed: set[int] = field(default_factory=set)
    metrics: MetricsSnapshot | None = None

    def decided_pids(self) -> list[int]:
        return sorted(self.decisions)


class Simulation:
    """Driver for one asynchronous shared-memory execution."""

    def __init__(
        self,
        n: int,
        scheduler: Scheduler | None = None,
        seed: int = 0,
        crash_plan: CrashPlan | None = None,
        record_events: bool = False,
        record_spans: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.seed = seed
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(seed)
        self.scheduler.reset()
        self.crash_plan = crash_plan or CrashPlan()
        self.trace = Trace(record_events=record_events, record_spans=record_spans)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Cached instrument handles: the step loop is the hottest path.
        self._steps_by_pid = [
            self.metrics.counter("runtime.steps", pid=pid) for pid in range(n)
        ]
        self._crash_counter = self.metrics.counter("runtime.crashes")
        self.step_count = 0
        self._clock = 0
        self.processes: dict[int, Process] = {}
        self.shared: dict[str, Any] = {}
        # Spans opened but not yet stamped with an invocation instant;
        # stamped at the owning process's next atomic operation.
        self.pending_invokes: dict[int, list] = {}

    # -- construction ------------------------------------------------------

    def context(self, pid: int) -> ProcessContext:
        """Create the :class:`ProcessContext` for process ``pid``."""
        return ProcessContext(
            pid=pid, n=self.n, rng=derive_rng(self.seed, "process", pid), simulation=self
        )

    def spawn(self, pid: int, program: ProcessProgram) -> None:
        """Create process ``pid`` running ``program`` (runs its local init)."""
        if pid in self.processes:
            raise ValueError(f"process {pid} already spawned")
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        self.processes[pid] = Process(pid, self.context(pid), program)

    def spawn_all(self, program_factory: Callable[[int], ProcessProgram]) -> None:
        """Spawn processes ``0..n-1`` with per-pid programs."""
        for pid in range(self.n):
            self.spawn(pid, program_factory(pid))

    def register_shared(self, name: str, obj: Any) -> Any:
        """Register a shared object for adversary inspection / memory audit."""
        self.shared[name] = obj
        return obj

    # -- clocks and recording ----------------------------------------------

    def next_tick(self) -> int:
        """Monotone logical clock; each consultation is a distinct instant."""
        self._clock += 1
        return self._clock

    def record_event(self, pid: int, kind: str, target: str, value: Any) -> None:
        pending = self.pending_invokes.get(pid)
        if pending:
            # This atomic operation is the first step of every span the
            # process opened since its last operation: stamp them now,
            # just before the operation's own instant.
            for span in pending:
                span.invoke_step = self.next_tick()
            pending.clear()
        self.trace.add_event(OpEvent(self.next_tick(), pid, kind, target, value))

    # -- execution ----------------------------------------------------------

    def runnable_pids(self) -> list[int]:
        return [pid for pid, p in sorted(self.processes.items()) if p.runnable]

    def crash(self, pid: int) -> None:
        self.processes[pid].crash()
        self._crash_counter.inc()

    def _apply_crash_plan(self) -> None:
        for pid in self.crash_plan.due(self.step_count):
            if self.processes[pid].runnable:
                self.processes[pid].crash()
                self._crash_counter.inc()

    def step(self) -> int | None:
        """Advance one process by one atomic step; return its pid.

        Returns ``None`` when no process is runnable.  Raises the failing
        process's exception if its program raised (a protocol bug should
        never be silent).
        """
        self._apply_crash_plan()
        runnable = self.runnable_pids()
        if not runnable:
            return None
        pid = self.scheduler.choose(self, runnable)
        if pid not in self.processes or not self.processes[pid].runnable:
            raise RuntimeError(f"scheduler chose non-runnable pid {pid}")
        process = self.processes[pid]
        process.advance()
        self.step_count += 1
        self._steps_by_pid[pid].inc()
        if process.state is ProcessState.FAILED:
            raise process.failure  # type: ignore[misc]
        return pid

    def run(
        self, max_steps: int = 1_000_000, raise_on_budget: bool = True
    ) -> SimulationOutcome:
        """Run until all processes finish/crash, or the budget runs out."""
        while self.step_count < max_steps:
            if self.step() is None:
                break
        else:
            if self.runnable_pids() and raise_on_budget:
                raise StepBudgetExceeded(
                    f"{self.step_count} steps taken, runnable={self.runnable_pids()}"
                )
        return self.outcome()

    def outcome(self) -> SimulationOutcome:
        decisions = {
            pid: p.decision
            for pid, p in self.processes.items()
            if p.state is ProcessState.FINISHED
        }
        crashed = {
            pid for pid, p in self.processes.items() if p.state is ProcessState.CRASHED
        }
        finished = all(
            p.state in (ProcessState.FINISHED, ProcessState.CRASHED)
            for p in self.processes.values()
        )
        return SimulationOutcome(
            decisions=decisions,
            total_steps=self.step_count,
            steps_by_pid={pid: p.steps_taken for pid, p in self.processes.items()},
            finished=finished,
            crashed=crashed,
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
        )
