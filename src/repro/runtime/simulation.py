"""The simulation driver.

A :class:`Simulation` owns ``n`` processes, a scheduler, an optional crash
plan and a trace.  Each call to :meth:`Simulation.step` lets the scheduler
pick one runnable process, which then performs exactly one atomic
shared-memory operation (plus any amount of local computation).  The run
ends when every process has finished or crashed, or when the step budget is
exhausted.

The simulation also keeps a registry of the shared objects created for it
(:meth:`register_shared`); adversaries use the registry to inspect memory,
and the memory-boundedness audit (experiment E6) uses it to measure the
largest value any register ever held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.runtime.events import OpEvent
from repro.runtime.process import Process, ProcessContext, ProcessProgram, ProcessState
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import CrashPlan, RandomScheduler, RecoveryPlan, Scheduler
from repro.runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.faults.watchdog import Watchdog, WatchdogAlert
    from repro.obs.timeseries import SeriesSpec

#: How many trailing trace events a degraded outcome carries as evidence.
TRACE_EXCERPT_EVENTS = 64

_RUNNABLE = ProcessState.RUNNABLE
_FAILED = ProcessState.FAILED


class StepBudgetExceeded(Exception):
    """Raised when a run does not terminate within its step budget.

    The message carries the per-pid step counts and a metrics summary
    (scan retries, round advances, decisions) so a budget blowup is
    diagnosable without a rerun; pass ``raise_on_budget=False`` to
    :meth:`Simulation.run` to get a degraded :class:`SimulationOutcome`
    instead of the raise.
    """


@dataclass
class SimulationOutcome:
    """Result of :meth:`Simulation.run`.

    A *degraded* outcome means the run did not complete normally — the step
    budget ran out (with ``raise_on_budget=False``) or a watchdog halted it
    — and carries the diagnosis instead of raising: ``failure_reason`` (why
    it stopped), any watchdog ``alerts``, and a ``trace_excerpt`` of the
    last recorded events (empty unless event recording was on).
    """

    decisions: dict[int, Any]
    total_steps: int
    steps_by_pid: dict[int, int]
    finished: bool
    crashed: set[int] = field(default_factory=set)
    metrics: MetricsSnapshot | None = None
    restarts: dict[int, int] = field(default_factory=dict)
    degraded: bool = False
    failure_reason: str | None = None
    alerts: list["WatchdogAlert"] = field(default_factory=list)
    trace_excerpt: list[OpEvent] = field(default_factory=list)

    def decided_pids(self) -> list[int]:
        return sorted(self.decisions)


class Simulation:
    """Driver for one asynchronous shared-memory execution."""

    def __init__(
        self,
        n: int,
        scheduler: Scheduler | None = None,
        seed: int = 0,
        crash_plan: CrashPlan | None = None,
        recovery_plan: RecoveryPlan | None = None,
        record_events: bool = False,
        record_spans: bool = True,
        metrics: MetricsRegistry | None = None,
        faults: "FaultPlan | None" = None,
        series: "SeriesSpec | None" = None,
    ):
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.seed = seed
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(seed)
        self.scheduler.reset()
        self.crash_plan = crash_plan or CrashPlan()
        self.recovery_plan = recovery_plan or RecoveryPlan()
        # Crash/restart entries fire once, in step order: long runs pay an
        # O(1) amortized check per step, and a restarted process is not
        # immediately re-crashed by its already-fired crash entry.
        self._crash_schedule = self.crash_plan.schedule()
        self._crash_index = 0
        self._restart_schedule = self.recovery_plan.schedule()
        self._restart_index = 0
        self.trace = Trace(record_events=record_events, record_spans=record_spans)
        # Recording flag consulted on every atomic operation: when neither
        # events nor spans are kept, the per-op trace work (event object,
        # clock ticks, span stamping) is skipped wholesale.
        self._recording = record_events or record_spans
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults: "FaultInjector | None" = None
        if faults is not None:
            # Imported lazily: repro.faults builds on the runtime package,
            # so a top-level import here would be circular.
            from repro.faults.injector import FaultInjector

            self.faults = FaultInjector(faults, self.metrics)
        self.series_recorder = None
        if series is not None:
            # Imported lazily for the same reason as the fault injector:
            # repro.obs.timeseries sits above the metrics core.
            from repro.obs.timeseries import SeriesRecorder

            self.series_recorder = SeriesRecorder(self.metrics, series)
            self.metrics.bind_series(self.series_recorder)
        # Cached instrument handles: the step loop is the hottest path.
        self._steps_by_pid = [
            self.metrics.counter("runtime.steps", pid=pid) for pid in range(n)
        ]
        self._crash_counter = self.metrics.counter("runtime.crashes")
        self._restart_counter = self.metrics.counter("runtime.restarts")
        # True while any crash/restart entry has not fired yet; lets the
        # step loop skip the schedule scan entirely in fault-free runs.
        self._fault_entries_pending = bool(
            self._crash_schedule or self._restart_schedule
        )
        self.step_count = 0
        self._clock = 0
        self.processes: dict[int, Process] = {}
        # pid-sorted (pid, process) pairs, rebuilt on spawn.  Process
        # objects are mutated in place (crash/restart/finish), never
        # replaced, so the sorted view stays valid between spawns.
        self._proc_seq: list[tuple[int, Process]] = []
        self.shared: dict[str, Any] = {}
        # Spans opened but not yet stamped with an invocation instant;
        # stamped at the owning process's next atomic operation.
        self.pending_invokes: dict[int, list] = {}

    # -- construction ------------------------------------------------------

    def context(self, pid: int, incarnation: int = 0) -> ProcessContext:
        """Create the :class:`ProcessContext` for process ``pid``.

        Each incarnation draws from its own rng stream (incarnation 0 keeps
        the historical tags, so existing seeds replay unchanged).
        """
        tags = ("process", pid) if incarnation == 0 else ("process", pid, incarnation)
        return ProcessContext(
            pid=pid,
            n=self.n,
            rng=derive_rng(self.seed, *tags),
            simulation=self,
            incarnation=incarnation,
            recording=self._recording,
        )

    def spawn(self, pid: int, program: ProcessProgram) -> None:
        """Create process ``pid`` running ``program`` (runs its local init)."""
        if pid in self.processes:
            raise ValueError(f"process {pid} already spawned")
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        self.processes[pid] = Process(pid, self.context(pid), program)
        self._proc_seq = sorted(self.processes.items())

    def spawn_all(self, program_factory: Callable[[int], ProcessProgram]) -> None:
        """Spawn processes ``0..n-1`` with per-pid programs."""
        for pid in range(self.n):
            self.spawn(pid, program_factory(pid))

    def register_shared(self, name: str, obj: Any) -> Any:
        """Register a shared object for adversary inspection / memory audit."""
        self.shared[name] = obj
        return obj

    # -- clocks and recording ----------------------------------------------

    def next_tick(self) -> int:
        """Monotone logical clock; each consultation is a distinct instant."""
        self._clock += 1
        return self._clock

    def record_event(self, pid: int, kind: str, target: str, value: Any) -> None:
        if not self._recording:
            # Nothing keeps events or spans: no ticks, no allocation.  The
            # logical clock is unobservable in this mode (nothing reads it),
            # so skipping it cannot change any output.
            return
        pending = self.pending_invokes.get(pid)
        if pending:
            # This atomic operation is the first step of every span the
            # process opened since its last operation: stamp them now,
            # just before the operation's own instant.
            for span in pending:
                span.invoke_step = self.next_tick()
            pending.clear()
        if self.trace.record_events:
            self.trace.events.append(
                OpEvent(self.next_tick(), pid, kind, target, value)
            )
        else:
            # Span recording is on: the event's instant must still consume
            # a tick so span invoke/response stamps keep their positions.
            self.next_tick()

    # -- execution ----------------------------------------------------------

    def runnable_pids(self) -> list[int]:
        return [pid for pid, p in self._proc_seq if p.state is _RUNNABLE]

    def crash(self, pid: int) -> None:
        self.processes[pid].crash()
        self._crash_counter.inc()

    def restart(self, pid: int) -> None:
        """Restart a crashed process (crash-recovery model).

        The new incarnation gets a fresh context — local state and private
        rng stream are lost; shared registers keep their values.  Spans the
        dead incarnation had opened but never stamped stay open (checkers
        skip open spans) and must not be stamped by the new incarnation's
        first operation.
        """
        process = self.processes[pid]
        incarnation = process.restarts + 1
        self.pending_invokes.pop(pid, None)
        process.restart(self.context(pid, incarnation=incarnation))
        self._restart_counter.inc()

    def _apply_fault_schedules(self) -> None:
        """Fire due crash and restart entries (each fires exactly once)."""
        step = self.step_count
        while (
            self._crash_index < len(self._crash_schedule)
            and self._crash_schedule[self._crash_index][1] <= step
        ):
            pid = self._crash_schedule[self._crash_index][0]
            self._crash_index += 1
            if self.processes[pid].runnable:
                self.crash(pid)
        while (
            self._restart_index < len(self._restart_schedule)
            and self._restart_schedule[self._restart_index][1] <= step
        ):
            pid = self._restart_schedule[self._restart_index][0]
            self._restart_index += 1
            if self.processes[pid].state is ProcessState.CRASHED:
                self.restart(pid)

    def step(self) -> int | None:
        """Advance one process by one atomic step; return its pid.

        Returns ``None`` when no process is runnable.  Raises the failing
        process's exception if its program raised (a protocol bug should
        never be silent).
        """
        if self._fault_entries_pending:
            self._apply_fault_schedules()
            self._fault_entries_pending = self._crash_index < len(
                self._crash_schedule
            ) or self._restart_index < len(self._restart_schedule)
        runnable = [pid for pid, p in self._proc_seq if p.state is _RUNNABLE]
        if not runnable and self._restart_index < len(self._restart_schedule):
            # Everyone alive is done/crashed but restarts are still
            # scheduled.  Global time is measured in process steps, so it
            # cannot advance to reach them — warp to the next entries that
            # actually revive someone.
            while (
                not runnable and self._restart_index < len(self._restart_schedule)
            ):
                pid = self._restart_schedule[self._restart_index][0]
                self._restart_index += 1
                if self.processes[pid].state is ProcessState.CRASHED:
                    self.restart(pid)
                    runnable = self.runnable_pids()
        if not runnable:
            return None
        pid = self.scheduler.choose(self, runnable)
        process = self.processes.get(pid)
        if process is None or process.state is not _RUNNABLE:
            raise RuntimeError(f"scheduler chose non-runnable pid {pid}")
        process.advance()
        self.step_count += 1
        self._steps_by_pid[pid].inc()
        if self.series_recorder is not None:
            # Sampling is keyed to the step counter (the logical clock the
            # adversary drives), never wall time, so series stay
            # deterministic per seed.
            self.series_recorder.maybe_sample(self.step_count)
        if process.state is _FAILED:
            raise process.failure  # type: ignore[misc]
        return pid

    def run(
        self,
        max_steps: int = 1_000_000,
        raise_on_budget: bool = True,
        watchdog: "Watchdog | None" = None,
    ) -> SimulationOutcome:
        """Run until all processes finish/crash, or the budget runs out.

        With ``raise_on_budget=False`` a budget blowup produces a degraded
        :class:`SimulationOutcome` (``degraded=True``, populated
        ``failure_reason``) instead of raising.  An optional
        :class:`~repro.faults.watchdog.Watchdog` observes every step; its
        alerts are copied into the outcome, and alert kinds in its
        ``halt_on`` set stop the run early with a degraded outcome.
        """
        if watchdog is not None:
            watchdog.reset()
        halted: "WatchdogAlert | None" = None
        while self.step_count < max_steps:
            if self.step() is None:
                break
            if watchdog is not None:
                for alert in watchdog.observe(self):
                    if alert.kind in watchdog.halt_on:
                        halted = alert
                        break
                if halted is not None:
                    break
        else:
            if self.runnable_pids():
                reason = self._budget_diagnosis(max_steps)
                if raise_on_budget:
                    raise StepBudgetExceeded(reason)
                return self.outcome(
                    degraded=True, failure_reason=reason, watchdog=watchdog
                )
        if halted is not None:
            return self.outcome(
                degraded=True,
                failure_reason=f"watchdog halt — {halted}",
                watchdog=watchdog,
            )
        return self.outcome(watchdog=watchdog)

    def _budget_diagnosis(self, max_steps: int) -> str:
        """Readable diagnosis of a budget blowup (steps + progress metrics)."""
        per_pid = ", ".join(
            f"p{pid}={p.steps_taken}" for pid, p in sorted(self.processes.items())
        )
        decided = sorted(
            pid for pid, p in self.processes.items()
            if p.state is ProcessState.FINISHED
        )
        progress = (
            f"scan_retries={self.metrics.counter_total('snapshot.scan_retries')}, "
            f"round_advances={self.metrics.counter_total('consensus.round_advances')}, "
            f"coin_flips={self.metrics.counter_total('consensus.coin_flips')}"
            if self.metrics.enabled
            else "metrics disabled"
        )
        return (
            f"step budget exhausted: {self.step_count} steps taken "
            f"(budget {max_steps}), runnable={self.runnable_pids()}, "
            f"decided={decided}, steps_by_pid=[{per_pid}], {progress}"
        )

    def outcome(
        self,
        degraded: bool = False,
        failure_reason: str | None = None,
        watchdog: "Watchdog | None" = None,
    ) -> SimulationOutcome:
        if self.series_recorder is not None and self.step_count:
            # Final sample: the last point of every series reflects the
            # finished run even when the run length is not a multiple of
            # the sampling period (idempotent if it already sampled here).
            self.series_recorder.sample(self.step_count)
        decisions = {
            pid: p.decision
            for pid, p in self.processes.items()
            if p.state is ProcessState.FINISHED
        }
        crashed = {
            pid for pid, p in self.processes.items() if p.state is ProcessState.CRASHED
        }
        finished = all(
            p.state in (ProcessState.FINISHED, ProcessState.CRASHED)
            for p in self.processes.values()
        )
        alerts = list(watchdog.alerts) if watchdog is not None else []
        if degraded and alerts and failure_reason is not None:
            failure_reason += "; alerts: " + "; ".join(str(a) for a in alerts)
        return SimulationOutcome(
            decisions=decisions,
            total_steps=self.step_count,
            steps_by_pid={pid: p.steps_taken for pid, p in self.processes.items()},
            finished=finished,
            crashed=crashed,
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
            restarts={
                pid: p.restarts for pid, p in self.processes.items() if p.restarts
            },
            degraded=degraded,
            failure_reason=failure_reason,
            alerts=alerts,
            trace_excerpt=list(self.trace.events[-TRACE_EXCERPT_EVENTS:])
            if degraded
            else [],
        )
