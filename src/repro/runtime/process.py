"""Processes as generators.

A *process program* is a callable ``program(ctx) -> Generator`` where ``ctx``
is the :class:`ProcessContext` handed to it by the simulation.  The generator
must yield an :class:`~repro.runtime.events.OpIntent` before every atomic
shared-memory operation; the operation takes effect when the scheduler next
resumes the process.  Shared objects built on the runtime (registers,
scannable memory) expose their operations as sub-generators, so process code
composes them with ``yield from``::

    def program(ctx):
        value = yield from reg.read(ctx)
        yield from reg.write(ctx, value + 1)
        return value  # the process's decision

Everything a process does between two yields happens atomically with the
single shared-memory access performed at the resume point — exactly the
interleaving granularity of the paper's model, where local computation is
free and only shared accesses are scheduled.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, TYPE_CHECKING

from repro.runtime.events import OpIntent
from repro.runtime.trace import NULL_SPAN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.simulation import Simulation

ProcessProgram = Callable[["ProcessContext"], Generator[OpIntent, None, Any]]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    RUNNABLE = "runnable"
    FINISHED = "finished"
    CRASHED = "crashed"
    FAILED = "failed"  # raised an exception (a bug, surfaced by the driver)


@dataclass(slots=True)
class ProcessContext:
    """Per-process handle given to process programs.

    Attributes:
        pid: this process's identifier, ``0 <= pid < n``.
        n: total number of processes in the simulation.
        rng: this process's private random stream (local coin flips).
        simulation: back-reference used by shared objects to record events.
        recording: whether the simulation records events or spans; hot
            call-sites branch on this instead of paying two calls into a
            trace that keeps nothing (``if ctx.recording: ctx.record(...)``).
        incarnation: 0 for the original run of the program; ``k > 0`` for
            the ``k``-th restart after a crash (crash-recovery model).  A
            restarted incarnation gets a fresh ``local`` dict and a fresh
            rng stream — local state does not survive a crash.
    """

    pid: int
    n: int
    rng: random.Random
    simulation: "Simulation"
    local: dict[str, Any] = field(default_factory=dict)
    incarnation: int = 0
    recording: bool = True

    def record(self, kind: str, target: str, value: Any = None) -> None:
        """Record that this process just performed an atomic operation."""
        self.simulation.record_event(self.pid, kind, target, value)

    def begin_span(self, kind: str, target: str, argument: Any = None):
        """Open a high-level operation span (e.g. a scan) in the trace.

        The span's invocation instant is stamped lazily, at the span's
        first atomic operation: a process that has *queued* an operation
        but not yet executed any step of it has not invoked it in the
        global-time model.

        When neither events nor spans are recorded the shared
        :data:`~repro.runtime.trace.NULL_SPAN` is returned instead: no
        allocation, no id, no clock traffic.  (With event recording on, a
        real span is still created even if span recording is off, because
        its stamping consumes logical-clock ticks that recorded event step
        numbers depend on.)
        """
        if not self.recording:
            return NULL_SPAN
        span = self.simulation.trace.begin_span(
            self.pid, kind, target, argument, None
        )
        self.simulation.pending_invokes.setdefault(self.pid, []).append(span)
        return span

    def end_span(self, span, result: Any = None) -> None:
        """Close a high-level operation span with its result."""
        if span is NULL_SPAN:
            return
        self.simulation.trace.end_span(span, self.simulation.next_tick(), result)


class Process:
    """Wrapper around a process program's generator.

    The wrapper tracks the pending :class:`OpIntent` (the last yielded
    value), the lifecycle state, step counts, and the final decision returned
    by the program.  Slotted: one instance per process, but its ``state`` /
    ``pending`` attributes are read several times per simulation step.
    """

    __slots__ = (
        "pid",
        "ctx",
        "program",
        "state",
        "decision",
        "steps_taken",
        "restarts",
        "pending",
        "failure",
        "_generator",
    )

    def __init__(self, pid: int, ctx: ProcessContext, program: ProcessProgram):
        self.pid = pid
        self.ctx = ctx
        self.program = program
        self.state = ProcessState.RUNNABLE
        self.decision: Any = None
        self.steps_taken = 0
        self.restarts = 0
        self.pending: OpIntent | None = None
        self.failure: BaseException | None = None
        self._generator = program(ctx)
        self._prime()

    def _prime(self) -> None:
        """Run the program up to its first yield (local initialisation).

        A program that raises before its first yield is a wiring bug; the
        exception propagates out of ``spawn`` so it is never silent.
        """
        try:
            self.pending = next(self._generator)
        except StopIteration as stop:
            self._finish(stop.value)
        except Exception:
            self.state = ProcessState.FAILED
            self.pending = None
            raise

    def _finish(self, decision: Any) -> None:
        self.state = ProcessState.FINISHED
        self.decision = decision
        self.pending = None

    def _fail(self, exc: BaseException) -> None:
        self.state = ProcessState.FAILED
        self.failure = exc
        self.pending = None

    @property
    def runnable(self) -> bool:
        return self.state is ProcessState.RUNNABLE

    def crash(self) -> None:
        """Stop this process (it takes no further steps unless restarted)."""
        if self.state is ProcessState.RUNNABLE:
            self.state = ProcessState.CRASHED
            self._generator.close()
            self.pending = None

    def restart(self, ctx: ProcessContext) -> None:
        """Re-run the program after a crash (crash-recovery model).

        The new incarnation's context carries no local state — shared
        memory is the only thing that survives.  Programs that want to
        resume rather than start over must recover from their shared cell
        (``ctx.incarnation > 0`` tells them they are a restart).
        """
        if self.state is not ProcessState.CRASHED:
            raise RuntimeError(
                f"process {self.pid} is {self.state.value}, only crashed "
                "processes can restart"
            )
        self.ctx = ctx
        self.restarts += 1
        self.state = ProcessState.RUNNABLE
        self._generator = self.program(ctx)
        self._prime()

    def advance(self) -> None:
        """Perform the pending atomic operation and run to the next yield."""
        if not self.runnable:
            raise RuntimeError(f"process {self.pid} is {self.state.value}, cannot step")
        self.steps_taken += 1
        try:
            self.pending = self._generator.send(None)
        except StopIteration as stop:
            self._finish(stop.value)
        except Exception as exc:
            self._fail(exc)
