"""Deterministic randomness discipline.

Every source of randomness in a simulation (the scheduler, each process's
local coin, workload generators) draws from its own :class:`random.Random`
stream derived from a master seed plus a string tag.  Two runs with the same
master seed are therefore bit-identical, independently of how many draws each
component makes — the property the replay and shrinking machinery relies on.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *tags: object) -> int:
    """Derive a stable 64-bit seed from a master seed and a tag tuple.

    The derivation hashes the textual representation of the master seed and
    tags, so it is stable across processes and Python versions (unlike
    ``hash``, which is salted).
    """
    text = repr((int(master_seed), tuple(str(t) for t in tags)))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(master_seed: int, *tags: object) -> random.Random:
    """Return a fresh :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *tags))
