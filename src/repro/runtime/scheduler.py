"""Schedulers.

A scheduler decides, at every global step, which runnable process performs
its pending atomic operation.  The paper's adversary is *strong* and
*adaptive*: it sees all of shared memory, all local states, and all pending
operations.  The simulator exposes exactly that information (through the
:class:`~repro.runtime.simulation.Simulation` object) to schedulers, so a
scheduler subclass can implement any adversary the model allows.

Wait-freedom is modelled by :class:`CrashPlan`: the adversary may stop up to
``n - 1`` processes forever, and the surviving processes must still decide.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class Scheduler(abc.ABC):
    """Chooses the next process to take an atomic step."""

    @abc.abstractmethod
    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        """Return the pid (from ``runnable``, never empty) to schedule next."""

    def reset(self) -> None:
        """Forget any per-run state (called when a simulation starts)."""


class RoundRobinScheduler(Scheduler):
    """Fair scheduler: cycles through runnable processes in pid order.

    This is the *weakest* adversary; it is useful as a sanity baseline and
    for measuring best-case behaviour.
    """

    def __init__(self) -> None:
        self._last = -1

    def reset(self) -> None:
        self._last = -1

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        for pid in runnable:
            if pid > self._last:
                self._last = pid
                return pid
        self._last = runnable[0]
        return runnable[0]


class RandomScheduler(Scheduler):
    """Oblivious adversary: schedules a uniformly random runnable process.

    Optionally biased: ``weights[pid]`` multiplies a process's chance of
    being scheduled, which is a cheap way to model heterogeneous speeds.
    """

    def __init__(self, seed: int = 0, weights: dict[int, float] | None = None):
        self.seed = seed
        self.weights = dict(weights) if weights else None
        self._rng = derive_rng(seed, "random-scheduler")

    def reset(self) -> None:
        self._rng = derive_rng(self.seed, "random-scheduler")

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        if self.weights is None:
            return self._rng.choice(runnable)
        weights = [self.weights.get(pid, 1.0) for pid in runnable]
        return self._rng.choices(runnable, weights=weights, k=1)[0]


class ScriptedScheduler(Scheduler):
    """Replays a fixed pid sequence; falls back to round-robin after.

    Scripted schedules are how tests reproduce the handcrafted adversarial
    interleavings from the literature (e.g. the stalled-reader scenario that
    defeats naive two-writer register readers).  Script entries naming
    non-runnable processes are skipped.
    """

    def __init__(self, script: list[int]):
        self.script = list(script)
        self._pos = 0
        self._fallback = RoundRobinScheduler()

    def reset(self) -> None:
        self._pos = 0
        self._fallback.reset()

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        while self._pos < len(self.script):
            pid = self.script[self._pos]
            self._pos += 1
            if pid in runnable:
                return pid
        return self._fallback.choose(sim, runnable)


@dataclass
class CrashPlan:
    """A schedule of permanent process failures.

    ``crash_at[pid] = step`` crashes ``pid`` just before global step ``step``
    (so a step value of 0 means the process never takes a step at all).
    Wait-free algorithms must cope with any plan that leaves at least one
    process alive.
    """

    crash_at: dict[int, int] = field(default_factory=dict)

    @classmethod
    def random(
        cls,
        n: int,
        rng: random.Random,
        max_crashes: int | None = None,
        horizon: int = 2000,
    ) -> "CrashPlan":
        """A random plan crashing up to ``n - 1`` processes within ``horizon``."""
        limit = n - 1 if max_crashes is None else min(max_crashes, n - 1)
        count = rng.randint(0, limit)
        victims = rng.sample(range(n), count)
        return cls({pid: rng.randint(0, horizon) for pid in victims})

    def due(self, step: int) -> list[int]:
        """Pids whose crash step has arrived at global step ``step``."""
        return [pid for pid, at in self.crash_at.items() if at <= step]
