"""Schedulers.

A scheduler decides, at every global step, which runnable process performs
its pending atomic operation.  The paper's adversary is *strong* and
*adaptive*: it sees all of shared memory, all local states, and all pending
operations.  The simulator exposes exactly that information (through the
:class:`~repro.runtime.simulation.Simulation` object) to schedulers, so a
scheduler subclass can implement any adversary the model allows.

Wait-freedom is modelled by :class:`CrashPlan`: the adversary may stop up to
``n - 1`` processes forever, and the surviving processes must still decide.
:class:`RecoveryPlan` extends the fault model beyond the paper: a crashed
process may later restart with local state lost but shared memory intact.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class Scheduler(abc.ABC):
    """Chooses the next process to take an atomic step.

    Slotted (as are the built-in subclasses): ``choose`` runs once per
    simulation step, and per-instance ``__dict__`` lookups on it are
    measurable at that frequency.
    """

    __slots__ = ()

    @abc.abstractmethod
    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        """Return the pid (from ``runnable``, never empty) to schedule next."""

    def reset(self) -> None:
        """Forget any per-run state (called when a simulation starts)."""


class RoundRobinScheduler(Scheduler):
    """Fair scheduler: cycles through runnable processes in pid order.

    This is the *weakest* adversary; it is useful as a sanity baseline and
    for measuring best-case behaviour.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last = -1

    def reset(self) -> None:
        self._last = -1

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        for pid in runnable:
            if pid > self._last:
                self._last = pid
                return pid
        self._last = runnable[0]
        return runnable[0]


class RandomScheduler(Scheduler):
    """Oblivious adversary: schedules a uniformly random runnable process.

    Optionally biased: ``weights[pid]`` multiplies a process's chance of
    being scheduled, which is a cheap way to model heterogeneous speeds.
    """

    __slots__ = ("seed", "weights", "_rng", "_getrandbits")

    def __init__(self, seed: int = 0, weights: dict[int, float] | None = None):
        self.seed = seed
        self.weights = dict(weights) if weights else None
        self._rng = derive_rng(seed, "random-scheduler")
        self._getrandbits = self._rng.getrandbits

    def reset(self) -> None:
        self._rng = derive_rng(self.seed, "random-scheduler")
        self._getrandbits = self._rng.getrandbits

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        if self.weights is None:
            # Inlined ``Random.choice`` (= ``seq[_randbelow(len(seq))]``
            # with the getrandbits rejection loop), drawing the exact same
            # bits in the same order so every seeded schedule — and every
            # checked-in baseline built on one — replays unchanged.  Saves
            # two method dispatches per simulation step.
            n = len(runnable)
            getrandbits = self._getrandbits
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            return runnable[r]
        weights = [self.weights.get(pid, 1.0) for pid in runnable]
        if not any(w > 0 for w in weights):
            # Every runnable process is weighted 0 (e.g. the non-zero ones
            # all finished): fall back to uniform rather than raising.
            return self._rng.choice(runnable)
        return self._rng.choices(runnable, weights=weights, k=1)[0]


class ScriptedScheduler(Scheduler):
    """Replays a fixed pid sequence; falls back to round-robin after.

    Scripted schedules are how tests reproduce the handcrafted adversarial
    interleavings from the literature (e.g. the stalled-reader scenario that
    defeats naive two-writer register readers).  Script entries naming
    non-runnable processes are skipped.
    """

    __slots__ = ("script", "_pos", "_fallback")

    def __init__(self, script: list[int]):
        self.script = list(script)
        self._pos = 0
        self._fallback = RoundRobinScheduler()

    def reset(self) -> None:
        self._pos = 0
        self._fallback.reset()

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        while self._pos < len(self.script):
            pid = self.script[self._pos]
            self._pos += 1
            if pid in runnable:
                return pid
        return self._fallback.choose(sim, runnable)


class TracingScheduler(Scheduler):
    """Wraps any scheduler and records what it *granted*.

    The causal layer (:mod:`repro.obs.causality`) attributes latency to
    the schedule; this wrapper records the schedule's shape from the
    scheduler's side — grants per pid, the longest consecutive streak each
    pid was given, and a bounded tail of the grant sequence — without
    changing a single choice (the inner scheduler sees the same calls in
    the same order, so a traced run replays identically).
    """

    __slots__ = (
        "inner",
        "history",
        "grants",
        "max_streak",
        "recent",
        "_streak_pid",
        "_streak_len",
    )

    def __init__(self, inner: Scheduler, history: int = 1024):
        if history < 0:
            raise ValueError(f"history must be >= 0, got {history}")
        self.inner = inner
        self.history = history
        self.grants: dict[int, int] = {}
        self.max_streak: dict[int, int] = {}
        self.recent: list[int] = []
        self._streak_pid: int | None = None
        self._streak_len = 0

    def reset(self) -> None:
        self.inner.reset()
        self.grants = {}
        self.max_streak = {}
        self.recent = []
        self._streak_pid = None
        self._streak_len = 0

    def choose(self, sim: "Simulation", runnable: list[int]) -> int:
        pid = self.inner.choose(sim, runnable)
        self.grants[pid] = self.grants.get(pid, 0) + 1
        if pid == self._streak_pid:
            self._streak_len += 1
        else:
            self._streak_pid = pid
            self._streak_len = 1
        if self._streak_len > self.max_streak.get(pid, 0):
            self.max_streak[pid] = self._streak_len
        if self.history:
            self.recent.append(pid)
            if len(self.recent) > self.history:
                del self.recent[: len(self.recent) - self.history]
        return pid

    def to_rows(self) -> list[dict[str, int]]:
        """One row per pid: grants and longest streak (sorted by pid)."""
        return [
            {
                "pid": pid,
                "granted": self.grants[pid],
                "max_streak": self.max_streak.get(pid, 0),
            }
            for pid in sorted(self.grants)
        ]


@dataclass
class CrashPlan:
    """A schedule of permanent process failures.

    ``crash_at[pid] = step`` crashes ``pid`` just before global step ``step``
    (so a step value of 0 means the process never takes a step at all).
    Wait-free algorithms must cope with any plan that leaves at least one
    process alive.
    """

    crash_at: dict[int, int] = field(default_factory=dict)

    @classmethod
    def random(
        cls,
        n: int,
        rng: random.Random,
        max_crashes: int | None = None,
        horizon: int = 2000,
    ) -> "CrashPlan":
        """A random plan crashing up to ``n - 1`` processes within ``horizon``."""
        limit = n - 1 if max_crashes is None else min(max_crashes, n - 1)
        count = rng.randint(0, limit)
        victims = rng.sample(range(n), count)
        return cls({pid: rng.randint(0, horizon) for pid in victims})

    def due(self, step: int) -> list[int]:
        """Pids whose crash step has arrived at global step ``step``.

        Pure query over the plan; the simulation itself consumes the plan
        through a sorted fire-once schedule, so an entry is never rescanned
        (or re-applied to a restarted process) after it has fired.
        """
        return [pid for pid, at in self.crash_at.items() if at <= step]

    def schedule(self) -> list[tuple[int, int]]:
        """The plan as a ``(pid, step)`` list sorted by firing order."""
        return sorted(self.crash_at.items(), key=lambda item: (item[1], item[0]))


@dataclass
class RecoveryPlan:
    """A schedule of crash *recoveries* (the crash-recovery fault model).

    ``restart_at[pid] = step`` restarts ``pid`` at global step ``step`` if it
    is crashed by then: the process's program is re-run from the top with
    all local state (including its private coin stream) lost, while every
    shared register — in particular its scannable-memory cell — keeps its
    value.  A restart entry for a process that is not crashed when its step
    arrives is dropped; each entry fires at most once.

    This weakens the paper's crash = halt-forever model in the direction of
    real systems.  Safety of the paper's protocol survives it because a
    recovered process resumes from its own (still intact) cell and is then
    indistinguishable from a merely slow process; wait-freedom bounds do
    not transfer, since a process can lose arbitrary local progress (see
    ``docs/robustness.md``).
    """

    restart_at: dict[int, int] = field(default_factory=dict)

    @classmethod
    def random(
        cls,
        crash_plan: CrashPlan,
        rng: random.Random,
        probability: float = 0.5,
        max_delay: int = 1000,
    ) -> "RecoveryPlan":
        """Restart each crashed pid with ``probability``, some steps later."""
        return cls(
            {
                pid: at + rng.randint(1, max_delay)
                for pid, at in crash_plan.crash_at.items()
                if rng.random() < probability
            }
        )

    def schedule(self) -> list[tuple[int, int]]:
        """The plan as a ``(pid, step)`` list sorted by firing order."""
        return sorted(self.restart_at.items(), key=lambda item: (item[1], item[0]))
