"""ASCII timeline rendering of operation traces.

Turns the spans of a recorded trace into a proportional text Gantt chart —
one row per operation execution, bars positioned on the global logical
clock — which makes interleaving bugs and adversarial schedules visible at
a glance::

    p0 |   [=== write(5) -> None ===]
    p1 | [========= scan() -> (5, None) =========]
    p0 |                      [== write(6) ==]

Used by the CLI (``python -m repro trace ...``) and handy in tests when a
property checker reports a violation: render the trace, see the overlap.
"""

from __future__ import annotations

from typing import Iterable

from repro.runtime.events import OpSpan
from repro.runtime.trace import Trace


def render_timeline(
    trace: Trace,
    width: int = 88,
    kinds: Iterable[str] | None = None,
    targets: Iterable[str] | None = None,
    max_rows: int | None = None,
) -> str:
    """Render completed spans as a proportional ASCII timeline.

    Args:
        trace: the recorded trace.
        width: total character width of the time axis.
        kinds: optional span-kind filter (e.g. ``{"scan", "write"}``).
        targets: optional target filter.
        max_rows: cap on rendered rows (earliest first).
    """
    if not trace.spans and not trace.record_spans:
        # Span recording was explicitly disabled: an empty chart would be
        # indistinguishable from "nothing happened", so explain instead.
        return (
            "(no spans: span recording is off — construct the Simulation "
            "with record_spans=True, or pass --timeline to `repro run`)"
        )
    kind_set = set(kinds) if kinds is not None else None
    target_set = set(targets) if targets is not None else None
    spans = [
        s
        for s in trace.spans
        if not s.is_open
        and s.invoke_step is not None
        and (kind_set is None or s.kind in kind_set)
        and (target_set is None or s.target in target_set)
    ]
    spans.sort(key=lambda s: (s.invoke_step, s.span_id))
    if max_rows is not None:
        spans = spans[:max_rows]
    if not spans:
        return "(no completed spans)"

    t_min = min(s.invoke_step for s in spans)
    t_max = max(s.response_step for s in spans)  # type: ignore[type-var]
    extent = max(1, t_max - t_min)

    def column(tick: int) -> int:
        return round((tick - t_min) * (width - 1) / extent)

    pid_width = max(len(f"p{s.pid}") for s in spans)
    lines = [
        f"{'':>{pid_width}} | ticks {t_min}..{t_max} "
        f"({len(spans)} operations)"
    ]
    for span in spans:
        start = column(span.invoke_step)
        end = column(span.response_step)  # type: ignore[arg-type]
        label = _label(span)
        bar_width = max(1, end - start + 1)
        if bar_width >= len(label) + 2:
            filler = "=" * (bar_width - 2 - len(label))
            bar = f"[{label}{filler}]" if bar_width > 2 else "|"
        else:
            bar = ("[" + "=" * (bar_width - 2) + "]") if bar_width > 2 else "#"
            bar += f" {label}"
        lines.append(f"{f'p{span.pid}':>{pid_width}} | " + " " * start + bar)
    return "\n".join(lines)


def _label(span: OpSpan) -> str:
    argument = "" if span.argument is None else repr(span.argument)
    result = "" if span.result is None else f" -> {span.result!r}"
    return f"{span.kind}({argument}){result}"


def print_timeline(trace: Trace, **kwargs) -> None:
    """Convenience: render and print."""
    print(render_timeline(trace, **kwargs))
