"""Replay-based exhaustive schedule exploration.

Asynchronous shared memory is an interleaving model and every component in
this library is deterministic given (seed, schedule), so the full behaviour
space of a small workload is exactly the tree of scheduler choices.  The
explorer walks that tree by *replay*: each node is a schedule prefix,
re-executed from scratch on a fresh simulation (process generators cannot
be checkpointed, and replay keeps the semantics exact).

``explore_schedules`` runs a property check on every *complete* execution
(all processes finished).  Prefixes that exceed ``max_steps`` are counted
as truncated rather than silently dropped, so "0 violations" always comes
with an explicit statement of what was and was not covered.

Cost: roughly (number of tree nodes) × (prefix length) simulated steps.
Workloads of ~10–14 atomic steps across 2–3 processes explore completely in
seconds; anything larger should use ``max_runs`` as a budget and treat the
result as a (still deterministic and reproducible) frontier search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.scheduler import ScriptedScheduler
from repro.runtime.simulation import Simulation

SetupFn = Callable[[Simulation], Callable[[int], Any]]
CheckFn = Callable[[Simulation, Any], list]


@dataclass
class ExplorationResult:
    """Outcome of an exhaustive (or budget-capped) exploration."""

    complete_runs: int = 0
    truncated_runs: int = 0
    violations: list = field(default_factory=list)
    exhausted: bool = True  # False if max_runs stopped the walk early
    witness_schedules: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "exhaustive" if self.exhausted else "budget-capped"
        return (
            f"{status}: {self.complete_runs} complete runs, "
            f"{self.truncated_runs} truncated, "
            f"{len(self.violations)} violations"
        )


def _replay(
    n: int, setup: SetupFn, prefix: tuple[int, ...], sim_kwargs: dict
) -> Simulation:
    sim = Simulation(
        n, scheduler=ScriptedScheduler(list(prefix)), seed=0, **sim_kwargs
    )
    sim.spawn_all(setup(sim))
    for _ in range(len(prefix)):
        if sim.step() is None:
            break
    return sim


def explore_schedules(
    n: int,
    setup: SetupFn,
    check: CheckFn,
    max_steps: int = 24,
    max_runs: int | None = None,
    record_events: bool = False,
    stop_on_first_violation: bool = True,
) -> ExplorationResult:
    """Explore every schedule of a workload; check each complete run.

    Args:
        n: number of processes.
        setup: builds the workload's shared objects on a fresh simulation
            and returns the per-pid program factory (fresh state per
            replay — never close over mutable state outside ``setup``).
        check: ``check(sim, outcome) -> list of violations`` (empty = ok);
            run on every complete execution.
        max_steps: prefixes longer than this are counted as truncated.
        max_runs: optional budget on complete executions checked.
        stop_on_first_violation: return as soon as a violation is found
            (its schedule is recorded as a witness either way).
    """
    result = ExplorationResult()
    stack: list[tuple[int, ...]] = [()]
    while stack:
        if max_runs is not None and result.complete_runs >= max_runs:
            result.exhausted = False
            break
        prefix = stack.pop()
        sim = _replay(n, setup, prefix, {"record_events": record_events})
        runnable = sim.runnable_pids()
        if not runnable:
            result.complete_runs += 1
            violations = check(sim, sim.outcome())
            if violations:
                result.violations.extend(violations)
                result.witness_schedules.append(prefix)
                if stop_on_first_violation:
                    result.exhausted = False
                    break
            continue
        if len(prefix) >= max_steps:
            result.truncated_runs += 1
            continue
        # Reverse order so lower pids are explored first (stable output).
        for pid in reversed(runnable):
            stack.append(prefix + (pid,))
    return result
