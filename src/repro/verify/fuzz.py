"""Randomized safety campaigns for consensus protocols.

The safety theorems hold on *every* execution, so the more diverse the
executions checked, the stronger the evidence.  This harness runs a
protocol factory across a grid of process counts, schedulers, crash plans
and seeds, validating every run and aggregating the outcome — the engine
behind experiment E11 and available as a user-facing tool::

    report = fuzz_consensus(lambda: AdsConsensus(), n_values=[2, 4],
                            runs_per_cell=25)
    assert report.ok, report.failures

Schedules covered by default: fair random, round-robin, the lockstep
barrier adversary, and the split adversary; half the runs add a random
crash plan (never killing everyone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.consensus.ads import pref_reader
from repro.consensus.interface import ConsensusRun
from repro.consensus.validation import validate_run
from repro.runtime.adversary import LockstepAdversary, SplitAdversary
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import CrashPlan, RandomScheduler, RoundRobinScheduler

DEFAULT_SCHEDULERS: dict[str, Callable[[int], Any]] = {
    "random": lambda seed: RandomScheduler(seed=seed),
    "round-robin": lambda seed: RoundRobinScheduler(),
    "lockstep": lambda seed: LockstepAdversary("mem", seed=seed),
    "split": lambda seed: SplitAdversary(pref_reader, seed=seed),
}


@dataclass
class FuzzFailure:
    """One unsafe run, with everything needed to replay it."""

    protocol: str
    n: int
    scheduler: str
    seed: int
    inputs: tuple
    crashes: dict[int, int]
    problems: list[str]

    def __str__(self) -> str:
        return (
            f"{self.protocol} n={self.n} scheduler={self.scheduler} "
            f"seed={self.seed} inputs={self.inputs} crashes={self.crashes}: "
            + "; ".join(self.problems)
        )


@dataclass
class FuzzReport:
    """Aggregate result of a campaign."""

    runs: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    steps_total: int = 0
    by_scheduler: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "CLEAN" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"{self.runs} runs ({', '.join(f'{k}: {v}' for k, v in sorted(self.by_scheduler.items()))}), "
            f"{self.steps_total} total steps: {status}"
        )


def fuzz_consensus(
    protocol_factory: Callable[[], Any],
    n_values: Iterable[int] = (2, 3, 4),
    runs_per_cell: int = 10,
    schedulers: dict[str, Callable[[int], Any]] | None = None,
    crash_probability: float = 0.5,
    max_steps: int = 100_000_000,
    master_seed: int = 0,
    extra_check: Callable[[ConsensusRun], list[str]] | None = None,
    stop_on_first_failure: bool = False,
) -> FuzzReport:
    """Run a randomized safety campaign; every run is validated.

    Args:
        protocol_factory: builds a fresh protocol per run.
        n_values: process counts to cover.
        runs_per_cell: runs per (n, scheduler) cell.
        schedulers: name → factory(seed); defaults to the four standard
            schedules (the split adversary is skipped for protocols whose
            memory layout it cannot read — it degrades to random there).
        crash_probability: fraction of runs that get a random crash plan.
        extra_check: optional additional per-run validation returning
            problem strings (e.g. a memory-bound assertion).
    """
    schedulers = dict(schedulers) if schedulers is not None else dict(DEFAULT_SCHEDULERS)
    report = FuzzReport()
    for n in n_values:
        for scheduler_name, scheduler_factory in schedulers.items():
            for rep in range(runs_per_cell):
                rng = derive_rng(master_seed, "fuzz", n, scheduler_name, rep)
                seed = rng.randrange(2**31)
                inputs = [rng.randint(0, 1) for _ in range(n)]
                crashes = (
                    CrashPlan.random(n, rng, horizon=500)
                    if rng.random() < crash_probability
                    else CrashPlan()
                )
                protocol = protocol_factory()
                run = protocol.run(
                    inputs,
                    scheduler=scheduler_factory(seed),
                    seed=seed,
                    crash_plan=crashes,
                    max_steps=max_steps,
                )
                report.runs += 1
                report.steps_total += run.total_steps
                report.by_scheduler[scheduler_name] = (
                    report.by_scheduler.get(scheduler_name, 0) + 1
                )
                problems = list(validate_run(run).problems)
                if extra_check is not None:
                    problems.extend(extra_check(run))
                if problems:
                    report.failures.append(
                        FuzzFailure(
                            protocol=run.protocol,
                            n=n,
                            scheduler=scheduler_name,
                            seed=seed,
                            inputs=tuple(inputs),
                            crashes=dict(crashes.crash_at),
                            problems=problems,
                        )
                    )
                    if stop_on_first_failure:
                        return report
    return report
