"""Randomized safety campaigns for consensus protocols.

The safety theorems hold on *every* execution, so the more diverse the
executions checked, the stronger the evidence.  This harness runs a
protocol factory across a grid of process counts, schedulers, crash plans
and seeds, validating every run and aggregating the outcome — the engine
behind experiment E11 and available as a user-facing tool::

    report = fuzz_consensus(lambda: AdsConsensus(), n_values=[2, 4],
                            runs_per_cell=25)
    assert report.ok, report.failures

Schedules covered by default: fair random, round-robin, the lockstep
barrier adversary, and the split adversary; half the runs add a random
crash plan (never killing everyone).  For protocols that support crash
recovery, some crashed runs additionally restart their victims
(:class:`~repro.runtime.scheduler.RecoveryPlan`); an optional fault cell
injects register faults and counts how often the validators catch them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.consensus.ads import pref_reader
from repro.consensus.interface import ConsensusRun
from repro.consensus.validation import validate_run
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.parallel import ParallelExecutionError, run_tasks_partial
from repro.runtime.adversary import LockstepAdversary, SplitAdversary
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import (
    CrashPlan,
    RandomScheduler,
    RecoveryPlan,
    RoundRobinScheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.ledger import RunLedger
    from repro.resilience.policy import FailurePolicy, PartialResult

#: Default livelock window (in simulation steps) for the per-run watchdog.
#: Healthy consensus runs move their progress counters (coin flips, round
#: advances) every few steps, so a window this wide never fires on them;
#: a genuinely frozen run is halted after the window instead of burning
#: its full step budget in a pool slot.
DEFAULT_LIVELOCK_WINDOW = 50_000

DEFAULT_SCHEDULERS: dict[str, Callable[[int], Any]] = {
    "random": lambda seed: RandomScheduler(seed=seed),
    "round-robin": lambda seed: RoundRobinScheduler(),
    "lockstep": lambda seed: LockstepAdversary("mem", seed=seed),
    "split": lambda seed: SplitAdversary(pref_reader, seed=seed),
}


@dataclass
class FuzzFailure:
    """One unsafe run, with everything needed to replay it."""

    protocol: str
    n: int
    scheduler: str
    seed: int
    inputs: tuple
    crashes: dict[int, int]
    problems: list[str]
    recoveries: dict[int, int] = field(default_factory=dict)
    degraded: bool = False
    fault_plan: str | None = None

    def __str__(self) -> str:
        extras = ""
        if self.recoveries:
            extras += f" recoveries={self.recoveries}"
        if self.fault_plan:
            extras += f" faults={self.fault_plan}"
        if self.degraded:
            extras += " [degraded]"
        return (
            f"{self.protocol} n={self.n} scheduler={self.scheduler} "
            f"seed={self.seed} inputs={self.inputs} crashes={self.crashes}"
            f"{extras}: " + "; ".join(self.problems)
        )


@dataclass
class FuzzReport:
    """Aggregate result of a campaign."""

    runs: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    steps_total: int = 0
    by_scheduler: dict[str, int] = field(default_factory=dict)
    recovery_runs: int = 0
    degraded_runs: int = 0
    fault_runs: int = 0
    fault_injections: int = 0
    fault_detections: int = 0
    watchdog_halts: int = 0
    cache_hits: int = 0
    task_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.task_errors

    def summary(self) -> str:
        if self.ok:
            status = "CLEAN"
        else:
            status = f"{len(self.failures)} FAILURES"
            if self.task_errors:
                status += f", {len(self.task_errors)} CELLS LOST"
        extras = ""
        if self.recovery_runs:
            extras += f", {self.recovery_runs} with recoveries"
        if self.fault_runs:
            extras += (
                f", {self.fault_runs} with faults "
                f"({self.fault_injections} injected, "
                f"{self.fault_detections} detected)"
            )
        if self.degraded_runs:
            extras += f", {self.degraded_runs} degraded"
        if self.watchdog_halts:
            extras += f", {self.watchdog_halts} watchdog halts"
        if self.cache_hits:
            extras += f", {self.cache_hits} cells from ledger"
        per_sched = ", ".join(
            f"{k}: {v}" for k, v in sorted(self.by_scheduler.items())
        )
        return (
            f"{self.runs} runs ({per_sched}), "
            f"{self.steps_total} total steps{extras}: {status}"
        )


@dataclass
class _CellOutcome:
    """Everything one (n, scheduler) grid cell contributes to the report.

    Picklable on purpose: parallel campaigns run each cell in a worker
    process and merge these in grid order, which keeps the final report
    bit-identical to the serial nested loop.  Also JSON round-trippable
    (:meth:`to_payload` / :meth:`from_payload`) so the run ledger can
    serve a previously recorded cell as a cache hit.
    """

    n: int
    scheduler: str
    runs: int = 0
    steps_total: int = 0
    recovery_runs: int = 0
    degraded_runs: int = 0
    fault_runs: int = 0
    fault_injections: int = 0
    fault_detections: int = 0
    watchdog_halts: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    stopped: bool = False

    def to_payload(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["failures"] = [
            {
                **dataclasses.asdict(failure),
                "inputs": list(failure.inputs),
            }
            for failure in self.failures
        ]
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "_CellOutcome":
        failures = []
        for raw in payload.get("failures", []):
            failures.append(
                FuzzFailure(
                    protocol=raw["protocol"],
                    n=int(raw["n"]),
                    scheduler=raw["scheduler"],
                    seed=int(raw["seed"]),
                    inputs=tuple(raw.get("inputs", ())),
                    # JSON turns int keys into strings; restore them.
                    crashes={int(k): v for k, v in raw.get("crashes", {}).items()},
                    problems=list(raw.get("problems", [])),
                    recoveries={
                        int(k): v for k, v in raw.get("recoveries", {}).items()
                    },
                    degraded=bool(raw.get("degraded", False)),
                    fault_plan=raw.get("fault_plan"),
                )
            )
        return cls(
            n=int(payload["n"]),
            scheduler=payload["scheduler"],
            runs=int(payload.get("runs", 0)),
            steps_total=int(payload.get("steps_total", 0)),
            recovery_runs=int(payload.get("recovery_runs", 0)),
            degraded_runs=int(payload.get("degraded_runs", 0)),
            fault_runs=int(payload.get("fault_runs", 0)),
            fault_injections=int(payload.get("fault_injections", 0)),
            fault_detections=int(payload.get("fault_detections", 0)),
            watchdog_halts=int(payload.get("watchdog_halts", 0)),
            failures=failures,
            stopped=bool(payload.get("stopped", False)),
        )


def _run_cell(
    spec: tuple[int, str],
    protocol_factory: Callable[[], Any],
    schedulers: dict[str, Callable[[int], Any]],
    runs_per_cell: int,
    crash_probability: float,
    recovery_probability: float,
    fault_probability: float,
    fault_plan_factory: Callable[[Any], FaultPlan] | None,
    fault_max_steps: int,
    max_steps: int,
    master_seed: int,
    extra_check: Callable[[ConsensusRun], list[str]] | None,
    stop_on_first_failure: bool,
    livelock_window: int | None,
) -> _CellOutcome:
    """Run every repetition of one grid cell; all rng derives from the cell
    identity, so the outcome is independent of where or when it runs."""
    n, scheduler_name = spec
    scheduler_factory = schedulers[scheduler_name]
    cell = _CellOutcome(n=n, scheduler=scheduler_name)
    for rep in range(runs_per_cell):
        rng = derive_rng(master_seed, "fuzz", n, scheduler_name, rep)
        seed = rng.randrange(2**31)
        inputs = [rng.randint(0, 1) for _ in range(n)]
        crashes = (
            CrashPlan.random(n, rng, horizon=500)
            if rng.random() < crash_probability
            else CrashPlan()
        )
        protocol = protocol_factory()
        recoveries = RecoveryPlan()
        if (
            protocol.supports_recovery
            and crashes.crash_at
            and rng.random() < recovery_probability
        ):
            recoveries = RecoveryPlan.random(crashes, rng, probability=1.0)
        faults = None
        if rng.random() < fault_probability:
            faults = (
                fault_plan_factory(rng)
                if fault_plan_factory is not None
                else FaultPlan.random(rng, targets=("mem.",))
            )
        # A per-run livelock watchdog turns a frozen simulation into a
        # degraded outcome after one window instead of letting it hold a
        # pool slot for the full step budget.  Only livelock halts: the
        # lockstep/split adversaries legitimately starve processes, so a
        # starvation halt would misfire on healthy adversarial runs.
        watchdog = (
            Watchdog(
                starvation_window=livelock_window,
                progress_window=livelock_window,
                check_every=256,
                halt_on=("livelock",),
            )
            if livelock_window
            else None
        )
        run = protocol.run(
            inputs,
            scheduler=scheduler_factory(seed),
            seed=seed,
            crash_plan=crashes,
            recovery_plan=recoveries if recoveries.restart_at else None,
            fault_plan=faults,
            max_steps=fault_max_steps if faults is not None else max_steps,
            raise_on_budget=False,
            watchdog=watchdog,
        )
        cell.runs += 1
        cell.steps_total += run.total_steps
        if watchdog is not None and any(
            alert.kind == "livelock" for alert in watchdog.alerts
        ):
            cell.watchdog_halts += 1
        if recoveries.restart_at:
            cell.recovery_runs += 1
        if run.outcome.degraded:
            cell.degraded_runs += 1
        problems = list(validate_run(run).problems)
        if extra_check is not None:
            problems.extend(extra_check(run))
        if faults is not None:
            # Faulty cell: detections are the *point*, not failures.
            cell.fault_runs += 1
            injected = (
                run.outcome.metrics.counter_total("faults.injected")
                if run.outcome.metrics
                else 0
            )
            cell.fault_injections += injected
            if problems or run.outcome.degraded:
                cell.fault_detections += 1
            continue
        if run.outcome.degraded:
            problems.append(f"degraded: {run.outcome.failure_reason}")
        if problems:
            cell.failures.append(
                FuzzFailure(
                    protocol=run.protocol,
                    n=n,
                    scheduler=scheduler_name,
                    seed=seed,
                    inputs=tuple(inputs),
                    crashes=dict(crashes.crash_at),
                    problems=problems,
                    recoveries=dict(recoveries.restart_at),
                    degraded=run.outcome.degraded,
                )
            )
            if stop_on_first_failure:
                cell.stopped = True
                return cell
    return cell


def _dispatch(run_cell, specs, *, batch_size, **engine_kwargs):
    """Route cells through the batched dispatcher when a batch size is
    set, the plain engine otherwise.  Fuzz cells have no fused-lane hooks
    (their fault plans and watchdogs need the full serial interpreter),
    so batching groups ``batch_size`` cells per pool task — same results,
    amortised fork/IPC."""
    if batch_size is not None:
        from repro.batch import run_tasks_batched

        return run_tasks_batched(
            run_cell, specs, batch_size=batch_size, **engine_kwargs
        )
    return run_tasks_partial(run_cell, specs, **engine_kwargs)


def _run_cells_recorded(
    run_cell: Callable[[tuple[int, str]], _CellOutcome],
    specs: list[tuple[int, str]],
    ledger: "RunLedger",
    experiment: str,
    cell_config: dict[str, Any],
    master_seed: int,
    workers: int | None,
    progress: Callable[[int, int], None] | None,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    metrics: Any = None,
    batch_size: int | None = None,
) -> tuple[list[_CellOutcome], int, "PartialResult"]:
    """Run grid cells through the ledger: cached cells are served from
    their records, fresh cells run (possibly parallel) and are appended
    *incrementally* in grid order as they complete — so an interrupted
    campaign leaves a valid submission-order ledger prefix behind and a
    re-run recomputes only the missing cells (``--resume``).  The ledger
    bytes stay identical at any worker count and across any number of
    interrupt/resume cycles of the same campaign.

    Returns ``(cells, cache_hits, partial)``; raises
    :class:`ParallelExecutionError` on terminal task failures unless the
    policy is continue-and-report (then the holes are in ``partial``).
    """
    from repro.obs.ledger import compute_fingerprint, make_record
    from repro.resilience.checkpoint import LedgerCheckpointer

    configs = [
        {"experiment": experiment, "n": n, "scheduler": name, **cell_config}
        for n, name in specs
    ]
    fingerprints = [compute_fingerprint(master_seed, c) for c in configs]
    cells: list[_CellOutcome | None] = [None] * len(specs)
    pending: list[int] = []
    checkpointer = LedgerCheckpointer(ledger)
    cache_hits = 0
    for index, fingerprint in enumerate(fingerprints):
        record = ledger.cached(fingerprint)
        if record is not None and record.kind == "fuzz":
            cells[index] = _CellOutcome.from_payload(record.outcome)
            checkpointer.skip(index)
            cache_hits += 1
        else:
            pending.append(index)

    def checkpoint(position: int, cell: _CellOutcome) -> None:
        index = pending[position]
        cells[index] = cell
        checkpointer.offer(
            index,
            make_record(
                kind="fuzz",
                experiment=experiment,
                seed=master_seed,
                config=configs[index],
                outcome=cell.to_payload(),
            ),
        )

    partial = _dispatch(
        run_cell,
        [specs[index] for index in pending],
        batch_size=batch_size,
        workers=workers,
        progress=progress,
        policy=policy,
        task_timeout=task_timeout,
        metrics=metrics,
        on_result=checkpoint,
    )
    checkpointer.close()
    if partial.errors and (policy is None or policy.mode != "continue"):
        raise ParallelExecutionError(partial.errors)
    return [cell for cell in cells if cell is not None], cache_hits, partial


def fuzz_consensus(
    protocol_factory: Callable[[], Any],
    n_values: Iterable[int] = (2, 3, 4),
    runs_per_cell: int = 10,
    schedulers: dict[str, Callable[[int], Any]] | None = None,
    crash_probability: float = 0.5,
    recovery_probability: float = 0.5,
    fault_probability: float = 0.0,
    fault_plan_factory: Callable[[Any], FaultPlan] | None = None,
    fault_max_steps: int = 300_000,
    expect_fault_detection: bool = False,
    max_steps: int = 100_000_000,
    master_seed: int = 0,
    extra_check: Callable[[ConsensusRun], list[str]] | None = None,
    stop_on_first_failure: bool = False,
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    ledger: "RunLedger | None" = None,
    experiment: str = "fuzz",
    livelock_window: int | None = DEFAULT_LIVELOCK_WINDOW,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    metrics: Any = None,
    batch_size: int | None = None,
    task_wrapper: Callable[
        [Callable[[tuple[int, str]], _CellOutcome]],
        Callable[[tuple[int, str]], _CellOutcome],
    ]
    | None = None,
) -> FuzzReport:
    """Run a randomized safety campaign; every run is validated.

    Args:
        protocol_factory: builds a fresh protocol per run.
        n_values: process counts to cover.
        runs_per_cell: runs per (n, scheduler) cell.
        schedulers: name → factory(seed); defaults to the four standard
            schedules (the split adversary is skipped for protocols whose
            memory layout it cannot read — it degrades to random there).
        crash_probability: fraction of runs that get a random crash plan.
        recovery_probability: fraction of *crashed* runs whose victims all
            restart (only for protocols with ``supports_recovery``) — the
            validators then require the restarted processes to decide too.
        fault_probability: fraction of runs that get a random register
            fault plan.  Faulty runs are judged differently: validation
            problems and degraded outcomes count as *detections* rather
            than failures (the injected fault is supposed to break things),
            and they run under the tighter ``fault_max_steps`` budget with
            ``raise_on_budget=False`` since lost progress is expected.
        fault_plan_factory: ``rng -> FaultPlan`` override for fault runs
            (default: :meth:`FaultPlan.random` on the ``mem.`` registers).
        expect_fault_detection: append a synthetic failure when faults were
            injected but no run detected anything (a verification hole).
        extra_check: optional additional per-run validation returning
            problem strings (e.g. a memory-bound assertion).

    Budget-exhausted runs never raise: they come back as degraded outcomes
    and are reported as failures (with ``degraded=True``) on fault-free
    runs, so one livelocked schedule cannot abort a whole campaign.

    ``workers`` > 1 runs the grid cells concurrently (one worker task per
    (n, scheduler) cell); every run's randomness derives from the cell
    identity, and cell outcomes merge in grid order, so the report —
    detection holes included — is identical to the serial campaign.
    ``stop_on_first_failure`` needs the serial scan order to mean
    anything, so it forces the serial path.  ``progress(done, total)``
    ticks as cells complete.

    With a ``ledger`` (and no ``stop_on_first_failure``), every grid cell
    is content-addressed by (master seed, cell config, code version):
    cells already in the ledger are cache hits — served from their record
    instead of recomputed — and fresh cells are appended parent-side in
    grid order after the merge, so the ledger bytes are identical at any
    worker count.  Campaigns with custom ``extra_check`` /
    ``fault_plan_factory`` callables should use a distinct ``experiment``
    label: the callables themselves cannot be fingerprinted.

    Resilience: ``livelock_window`` arms a per-run
    :class:`~repro.faults.watchdog.Watchdog` that halts a frozen
    simulation (degraded outcome, counted in ``watchdog_halts``) instead
    of letting it burn the whole step budget in a pool slot (``None``
    disables).  ``policy`` and ``task_timeout`` flow to
    :func:`~repro.parallel.run_tasks_partial`: a retry policy re-runs a
    crashed cell from its seed (bit-identical report), a
    continue-and-report policy turns lost cells into ``task_errors`` on
    the report instead of an exception.  With a ledger, completed cells
    checkpoint incrementally, so re-running an interrupted campaign
    recomputes only the missing cells (``cache_hits`` reports the rest).
    ``task_wrapper`` decorates the cell function before dispatch (chaos
    injection hooks like
    :class:`~repro.resilience.checkpoint.CrashOnce`).
    """
    schedulers = (
        dict(schedulers) if schedulers is not None else dict(DEFAULT_SCHEDULERS)
    )
    report = FuzzReport()
    specs = [(n, name) for n in n_values for name in schedulers]

    def run_cell(spec: tuple[int, str]) -> _CellOutcome:
        return _run_cell(
            spec,
            protocol_factory,
            schedulers,
            runs_per_cell,
            crash_probability,
            recovery_probability,
            fault_probability,
            fault_plan_factory,
            fault_max_steps,
            max_steps,
            master_seed,
            extra_check,
            stop_on_first_failure,
            livelock_window,
        )

    if task_wrapper is not None:
        run_cell = task_wrapper(run_cell)

    from repro.batch import resolve_batch_size

    batch_size = resolve_batch_size(batch_size)
    partial: "PartialResult | None" = None
    if stop_on_first_failure:
        cells = []
        for done, spec in enumerate(specs):
            cell = run_cell(spec)
            cells.append(cell)
            if progress is not None:
                progress(done + 1, len(specs))
            if cell.stopped:
                break
    elif ledger is not None:
        cells, report.cache_hits, partial = _run_cells_recorded(
            run_cell,
            specs,
            ledger,
            experiment,
            cell_config={
                # One throwaway instance names the protocol; parameter-level
                # identity beyond the name rides on the experiment label.
                "protocol": getattr(protocol_factory(), "name", "consensus"),
                "runs_per_cell": runs_per_cell,
                "crash_probability": crash_probability,
                "recovery_probability": recovery_probability,
                "fault_probability": fault_probability,
                "fault_max_steps": fault_max_steps,
                "max_steps": max_steps,
                "livelock_window": livelock_window,
                "has_extra_check": extra_check is not None,
                "has_fault_plan_factory": fault_plan_factory is not None,
            },
            master_seed=master_seed,
            workers=workers,
            progress=progress,
            policy=policy,
            task_timeout=task_timeout,
            metrics=metrics,
            batch_size=batch_size,
        )
    else:
        partial = _dispatch(
            run_cell,
            specs,
            batch_size=batch_size,
            workers=workers,
            progress=progress,
            policy=policy,
            task_timeout=task_timeout,
            metrics=metrics,
        )
        if partial.errors and (policy is None or policy.mode != "continue"):
            raise ParallelExecutionError(partial.errors)
        cells = [cell for cell in partial.results if cell is not None]
    if partial is not None:
        report.task_errors = [str(error) for error in partial.errors]

    for cell in cells:
        report.runs += cell.runs
        report.steps_total += cell.steps_total
        if cell.runs:
            report.by_scheduler[cell.scheduler] = (
                report.by_scheduler.get(cell.scheduler, 0) + cell.runs
            )
        report.recovery_runs += cell.recovery_runs
        report.degraded_runs += cell.degraded_runs
        report.fault_runs += cell.fault_runs
        report.fault_injections += cell.fault_injections
        report.fault_detections += cell.fault_detections
        report.watchdog_halts += cell.watchdog_halts
        report.failures.extend(cell.failures)
        if cell.stopped:
            return report
    if (
        expect_fault_detection
        and report.fault_injections > 0
        and report.fault_detections == 0
    ):
        report.failures.append(
            FuzzFailure(
                protocol="(campaign)",
                n=0,
                scheduler="*",
                seed=master_seed,
                inputs=(),
                crashes={},
                problems=[
                    f"{report.fault_injections} faults injected across "
                    f"{report.fault_runs} runs but nothing was detected"
                ],
                fault_plan="random",
            )
        )
    return report
