"""Bounded model checking of the constructions.

The randomized test-suite samples schedules; this package *enumerates*
them.  :mod:`repro.verify.explorer` replays a workload under every possible
interleaving up to a step bound (asynchronous shared memory is a pure
interleaving model, so replay-based DFS is exact), invoking a property
check on every complete execution — exhaustive verification for small
configurations of exactly the kind the paper's hand proofs argue about:

- the scannable memory's P1–P3 over all schedules of small write/scan
  mixes;
- linearizability of the two-writer register construction over all
  schedules of small read/write mixes (including every stalled-reader
  pattern, not just the classic one);
- consistency and validity of the consensus protocol for small n with the
  coin de-randomized both ways.
"""

from repro.verify.explorer import ExplorationResult, explore_schedules
from repro.verify.fuzz import FuzzFailure, FuzzReport, fuzz_consensus

__all__ = [
    "ExplorationResult",
    "FuzzFailure",
    "FuzzReport",
    "explore_schedules",
    "fuzz_consensus",
]
