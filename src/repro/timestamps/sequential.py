"""Sequential time-stamp systems: unbounded and bounded ([IL87]-style).

A (sequential) time-stamp system serves n processes, each holding one
*label*; ``take(pid)`` atomically hands ``pid`` a fresh label that
*dominates* the labels currently held by everyone else.  The system must
keep the dominance order on live labels a strict total order agreeing with
the order in which they were taken — that is what protocols use labels
for ("who moved last?").

With unbounded labels this is a counter.  Israeli and Li showed bounded
labels suffice for the sequential case: labels are strings of length n-1
over the three-cycle {0, 1, 2} (domain size 3^(n-1)) ordered by *recursive
cyclic dominance* — at the first differing position, digit ``d+1 mod 3``
beats digit ``d``.  A fresh label is computed level by level:

- if the labels to dominate all share one digit ``d`` at this level, take
  ``d+1 mod 3`` and pad with zeros (everything here is beaten outright);
- if they split over two digits, take the *winning* digit and recurse on
  the (strictly fewer) labels that carry it.

The invariant that at most two distinct digits are ever live per level is
what keeps the three-cycle acyclic in use; with at most n-1 labels to
dominate, the recursion bottoms out within n-1 levels.  The suite
validates the whole contract with hypothesis over random take-sequences.

The *concurrent* generalization ([DS89], where labels are taken while
being read) is out of scope; see the package docstring.
"""

from __future__ import annotations

from typing import Sequence

Label = tuple  # digits, most significant first


def _digit_beats(a: int, b: int) -> bool:
    """Cyclic dominance on the three-cycle: d+1 beats d."""
    return a == (b + 1) % 3


def dominates(x: Sequence[int], y: Sequence[int]) -> bool:
    """Does label x dominate label y (strictly)?  Equal labels: no."""
    if len(x) != len(y):
        raise ValueError("labels of one system have equal length")
    for a, b in zip(x, y):
        if a != b:
            return _digit_beats(a, b)
    return False


class UnboundedTimestamps:
    """The trivial counter scheme: labels grow forever."""

    def __init__(self, n: int):
        self.n = n
        self._next = 1
        self.labels = [(0,) for _ in range(n)]

    def take(self, pid: int) -> tuple:
        label = (self._next,)
        self._next += 1
        self.labels[pid] = label
        return label

    def label_of(self, pid: int) -> tuple:
        return self.labels[pid]

    @staticmethod
    def dominates(x, y) -> bool:
        return x > y

    def max_component(self) -> int:
        """Largest integer in use — grows with every take (unbounded)."""
        return max(label[0] for label in self.labels)


class BoundedSequentialTimestamps:
    """Israeli–Li style bounded sequential time-stamp system."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.length = max(1, n - 1)
        self.labels: list[Label] = [(0,) * self.length for _ in range(n)]

    # -- the dominance order -----------------------------------------------

    dominates = staticmethod(dominates)

    def label_of(self, pid: int) -> Label:
        return self.labels[pid]

    def domain_size(self) -> int:
        return 3**self.length

    # -- taking a fresh label --------------------------------------------------

    def _fresh(self, to_dominate: list[Label], level: int) -> Label:
        pad = self.length - level
        if not to_dominate:
            return (0,) * pad
        digits = sorted({label[level] for label in to_dominate})
        if len(digits) == 1:
            return ((digits[0] + 1) % 3,) + (0,) * (pad - 1)
        if len(digits) != 2:
            raise AssertionError(
                f"three live digits {digits} at level {level}: the two-digit "
                "invariant broke (this would be a construction bug)"
            )
        a, b = digits
        winner = a if _digit_beats(a, b) else b
        winners = [label for label in to_dominate if label[level] == winner]
        if len(winners) >= len(to_dominate):
            raise AssertionError("recursion must shrink: invariant broke")
        return (winner,) + self._fresh(winners, level + 1)

    def take(self, pid: int) -> Label:
        """Hand ``pid`` a fresh label dominating all other live labels."""
        others = [self.labels[q] for q in range(self.n) if q != pid]
        label = self._fresh(others, 0)
        assert all(dominates(label, other) for other in others), (
            f"fresh label {label} fails to dominate {others}"
        )
        self.labels[pid] = label
        return label

    def max_component(self) -> int:
        """Largest digit in use: always ≤ 2 — the boundedness headline."""
        return max(max(label) for label in self.labels)
