"""Bounded time-stamp systems (the [IL87]/[DS89] context of §1).

The paper's introduction explains that *exponential* bounded consensus was
already derivable from Abrahamson's algorithm by replacing its unbounded
time stamps with bounded (concurrent) time-stamp systems — and that no
such transformation seemed to exist for Aspnes–Herlihy, which is why the
paper builds its own bounded machinery (the rounds strip) instead.

This package supplies the time-stamp side of that story:

- :class:`~repro.timestamps.sequential.UnboundedTimestamps` — the trivial
  counter scheme every unbounded protocol implicitly uses;
- :class:`~repro.timestamps.sequential.BoundedSequentialTimestamps` — the
  Israeli–Li [IL87] style *bounded sequential* time-stamp system:
  labels from a finite domain of size 3^(n-1) with a recursive cyclic
  dominance order, where a freshly issued label always dominates all
  currently live ones.

The *concurrent* bounded system of [DS89] (which tolerates labels being
taken while being read) is a paper-sized construction in its own right and
deliberately out of scope — the whole point of the reproduced paper is
that consensus does not need it.
"""

from repro.timestamps.sequential import (
    BoundedSequentialTimestamps,
    UnboundedTimestamps,
    dominates,
)

__all__ = ["BoundedSequentialTimestamps", "UnboundedTimestamps", "dominates"]
