"""The paper's bounded scannable memory (§2.2).

Layout (for n processes):

- ``V[i]`` — a 1-writer-n-reader atomic register holding process ``i``'s
  value together with an *alternating bit* (so two consecutive writes by the
  same process always differ — the simplification the paper adopts) and a
  ghost write sequence number used only by the trace checkers;
- ``A[i][j]`` (``i ≠ j``) — a 2-writer "arrow" register between scanner
  ``i`` and writer ``j``:  scanner ``i`` writes 0 ("arrow towards others"),
  writer ``j`` writes 1 ("I started a write").

``write(v)`` by process ``j``  (paper's ``write`` procedure)::

    for i ≠ j: A[i][j] := 1      # notify all potential scanners
    V[j] := v                     # then publish the value

``scan`` by process ``i``  (paper's ``scan`` function)::

    L: for j ≠ i: A[i][j] := 0    # re-arm the handshakes
       collect V twice
       collect A[i][*]
       if any arrow is 1, or the two collects differ: goto L
       return the second collect

If the termination condition holds, no write whose value the scan returns
could have completed entirely before another returned write began — any such
writer would have turned an arrow and forced another round.  That yields the
snapshot property P2 (and P1/P3; see ``repro.snapshot.properties``).

The scan is not wait-free: an adversary that keeps scheduling fresh writes
can starve it (see ``ScanStarvingAdversary`` and experiment E7).  It is
*non-blocking* in the sense the paper needs: a scan only retries because
some new write completed, so in the consensus protocol — where every process
alternates scan and write — system-wide progress is guaranteed.

The arrow registers can optionally be built from the bounded two-writer
construction of :mod:`repro.registers.bloom` (``arrow_kind="bloom"``),
demonstrating boundedness all the way down to SWMR atomic cells
(ablation experiment E12).
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.registers.atomic import AtomicRegister, RegisterArray
from repro.registers.base import MemoryAudit
from repro.registers.bloom import TwoWriterRegister
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext
from repro.snapshot.interface import ScannableMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation

# V cell layout: (value, toggle, ghost_wseq)
_VALUE, _TOGGLE, _WSEQ = 0, 1, 2


class ScanRetriesExceeded(Exception):
    """A scan exceeded its configured retry limit (starvation guard)."""


class ArrowScannableMemory(ScannableMemory):
    """Bounded scannable memory from atomic registers + handshake arrows.

    Args:
        sim: owning simulation.
        name: object name (registers are named ``name.V[...]``, etc.).
        n: number of processes / slots.
        initial: initial value of every slot.
        arrow_kind: ``"atomic"`` (directly simulated 2-writer cells) or
            ``"bloom"`` (bounded construction from SWMR cells).
        audit: optional memory audit (ghost fields are excluded from it).
        max_rounds: optional scan retry limit (raises
            :class:`ScanRetriesExceeded`); ``None`` means retry forever.
    """

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        initial: Any = None,
        arrow_kind: str = "atomic",
        audit: MemoryAudit | None = None,
        max_rounds: int | None = None,
        ghost: bool = True,
    ):
        self.name = name
        self.n = n
        self.initial = initial
        self.audit = audit
        self.max_rounds = max_rounds
        self.ghost = ghost
        self._attempts = 0
        self._toggle = [0] * n
        self._wseq = [0] * n
        self._last_written = [initial] * n
        self._scans = sim.metrics.counter("snapshot.scans", object=name)
        self._scan_rounds = sim.metrics.histogram("snapshot.scan_rounds", object=name)
        self._retries = sim.metrics.counter("snapshot.scan_retries", object=name)
        self._arrow_toggles = sim.metrics.counter("snapshot.arrow_toggles", object=name)
        self._writes = sim.metrics.counter("snapshot.writes", object=name)
        self._value_magnitude = sim.metrics.gauge(
            "memory.max_magnitude", register=f"{name}.V"
        )
        self.V = RegisterArray(sim, f"{name}.V", n, initial=(initial, 0, 0))
        self.A: list[list[Any]] = [[None] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                arrow_name = f"{name}.A[{i},{j}]"
                if arrow_kind == "atomic":
                    self.A[i][j] = AtomicRegister(
                        sim, arrow_name, initial=0, writers=[i, j], audit=audit
                    )
                elif arrow_kind == "bloom":
                    self.A[i][j] = TwoWriterRegister(
                        sim, arrow_name, writer0=i, writer1=j, initial=0, audit=audit
                    )
                else:
                    raise ValueError(f"unknown arrow_kind: {arrow_kind!r}")
        # Per-pid register views, precomputed once: the scan loop touches
        # every one of these per round, and indexing ``self.A[i][j]`` /
        # ``self.V[i]`` per access was a measurable share of scan cost.
        self._v_regs = self.V.registers
        self._others = [[j for j in range(n) if j != i] for i in range(n)]
        # Row i: the arrows scanner i re-arms and reads (A[i][j], j != i).
        self._scan_arrows = [
            [self.A[i][j] for j in self._others[i]] for i in range(n)
        ]
        # Column i: the arrows writer i raises (A[j][i], j != i).
        self._write_arrows = [
            [self.A[j][i] for j in self._others[i]] for i in range(n)
        ]
        self._other_vregs = [
            [self._v_regs[j] for j in self._others[i]] for i in range(n)
        ]
        sim.register_shared(name, self)

    # -- operations ----------------------------------------------------------

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """Set all arrows towards potential scanners, then publish the value."""
        i = ctx.pid
        span = ctx.begin_span("write", self.name, value)
        self._writes.inc()
        arrow_toggles = self._arrow_toggles
        for reg in self._write_arrows[i]:
            yield from reg.write(ctx, 1)
            arrow_toggles.inc()
        self._toggle[i] ^= 1
        self._wseq[i] += 1
        span.meta["wseq"] = self._wseq[i]
        cell = (value, self._toggle[i], self._wseq[i] if self.ghost else 0)
        if self.audit is not None:
            # Audit the algorithmic fields only; the ghost wseq is
            # verification instrumentation, not protocol memory.
            self._value_magnitude.set_max(
                self.audit.observe(f"{self.name}.V[{i}]", (value, self._toggle[i]))
            )
        yield from self._v_regs[i].write(ctx, cell)
        self._last_written[i] = value
        ctx.end_span(span)

    def scan(self, ctx: ProcessContext) -> Generator[OpIntent, None, list]:
        """Double-collect with handshake arrows; retries until clean."""
        i = ctx.pid
        span = ctx.begin_span("scan", self.name)
        self._scans.inc()
        scan_arrows = self._scan_arrows[i]
        other_vregs = self._other_vregs[i]
        arrow_toggles = self._arrow_toggles
        max_rounds = self.max_rounds
        # Collect buffers live for one scan call and are cleared between
        # retry rounds (per-call, not per-instance: concurrent scans by
        # different pids each hold their own).
        first: list = []
        second: list = []
        arrows: list = []
        rounds = 0
        while True:
            rounds += 1
            self._attempts += 1
            if rounds > 1:
                self._retries.inc()
            if max_rounds is not None and rounds > max_rounds:
                raise ScanRetriesExceeded(
                    f"scan by {i} on {self.name} exceeded {max_rounds} rounds"
                )
            for reg in scan_arrows:
                yield from reg.write(ctx, 0)
                arrow_toggles.inc()
            first.clear()
            for reg in other_vregs:
                first.append((yield from reg.read(ctx)))
            second.clear()
            for reg in other_vregs:
                second.append((yield from reg.read(ctx)))
            arrows.clear()
            for reg in scan_arrows:
                arrows.append((yield from reg.read(ctx)))
            clean = True
            for k in range(len(second)):
                f = first[k]
                s = second[k]
                if arrows[k] != 0 or f[_VALUE] != s[_VALUE] or f[_TOGGLE] != s[_TOGGLE]:
                    clean = False
                    break
            if clean:
                break
        self._scan_rounds.observe(rounds)
        view = []
        k = 0
        for j in range(self.n):
            if j == i:
                view.append(self._last_written[i])
            else:
                view.append(second[k][_VALUE])
                k += 1
        if ctx.recording:
            wseqs = []
            k = 0
            for j in range(self.n):
                if j == i:
                    wseqs.append(self._wseq[i] if self.ghost else 0)
                else:
                    wseqs.append(second[k][_WSEQ])
                    k += 1
            span.meta["wseqs"] = tuple(wseqs)
            span.meta["rounds"] = rounds
            ctx.end_span(span, tuple(view))
        return view

    # -- inspection ------------------------------------------------------------

    def peek_view(self) -> list:
        return [cell[_VALUE] for cell in self.V.peek_all()]

    def scan_attempts(self) -> int:
        return self._attempts
