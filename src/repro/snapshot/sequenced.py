"""Unbounded sequence-number scannable memory (comparator).

The classic double-collect snapshot used (in spirit) by [AH88]: every write
carries an ever-growing sequence number, and a scan retries until two
consecutive collects are identical, in which case the collect is a snapshot
(it was the memory's exact content at every instant between the collects).

This satisfies P1–P3 like the arrow construction, but its registers grow
without bound — it exists as the *unbounded* comparator for the memory audit
(experiment E6) and as an ablation substrate for the consensus protocol
(experiment E12).
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.registers.atomic import RegisterArray
from repro.registers.base import MemoryAudit
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext
from repro.snapshot.interface import ScannableMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation

_VALUE, _SEQ = 0, 1


class SequencedScannableMemory(ScannableMemory):
    """Double-collect snapshot with unbounded per-slot sequence numbers."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        initial: Any = None,
        audit: MemoryAudit | None = None,
        max_rounds: int | None = None,
    ):
        self.name = name
        self.n = n
        self.initial = initial
        self.audit = audit
        self.max_rounds = max_rounds
        self._attempts = 0
        self._seq = [0] * n
        self._last_written = [initial] * n
        self._scans = sim.metrics.counter("snapshot.scans", object=name)
        self._scan_rounds = sim.metrics.histogram("snapshot.scan_rounds", object=name)
        self._retries = sim.metrics.counter("snapshot.scan_retries", object=name)
        self._writes = sim.metrics.counter("snapshot.writes", object=name)
        self.V = RegisterArray(sim, f"{name}.V", n, initial=(initial, 0), audit=audit)
        sim.register_shared(name, self)

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """One atomic write of ``(value, seq+1)`` to the own slot."""
        i = ctx.pid
        span = ctx.begin_span("write", self.name, value)
        self._writes.inc()
        self._seq[i] += 1
        span.meta["wseq"] = self._seq[i]
        yield from self.V[i].write(ctx, (value, self._seq[i]))
        self._last_written[i] = value
        ctx.end_span(span)

    def scan(self, ctx: ProcessContext) -> Generator[OpIntent, None, list]:
        """Collect repeatedly until two consecutive collects are identical."""
        i = ctx.pid
        span = ctx.begin_span("scan", self.name)
        self._scans.inc()
        rounds = 0
        previous = None
        while True:
            rounds += 1
            self._attempts += 1
            if rounds > 1:
                self._retries.inc()
            if self.max_rounds is not None and rounds > self.max_rounds:
                raise RuntimeError(
                    f"scan by {i} on {self.name} exceeded {self.max_rounds} rounds"
                )
            collect = []
            for j in range(self.n):
                cell = yield from self.V[j].read(ctx)
                collect.append(cell)
            if previous is not None and previous == collect:
                break
            previous = collect
        self._scan_rounds.observe(rounds)
        view = [cell[_VALUE] for cell in collect]
        span.meta["wseqs"] = tuple(cell[_SEQ] for cell in collect)
        span.meta["rounds"] = rounds
        ctx.end_span(span, tuple(view))
        return view

    def peek_view(self) -> list:
        return [cell[_VALUE] for cell in self.V.peek_all()]

    def scan_attempts(self) -> int:
        return self._attempts
