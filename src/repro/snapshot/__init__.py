"""Scannable memory (§2 of the paper).

A *scannable memory* is an n-slot shared object where slot ``i`` is written
only by process ``i`` and a ``scan`` returns a view — one value per slot —
satisfying:

- **P1 (regularity)**: every returned value was written by an operation that
  potentially coexists with the scan;
- **P2 (snapshot)**: any two returned values come from writes that
  potentially coexist with one another — the view looks instantaneous;
- **P3 (scan serializability)**: all scans by all processes are totally
  ordered: of any two views, one is slot-wise no older than the other.

Implementations:

- :class:`~repro.snapshot.arrows.ArrowScannableMemory` — the paper's bounded
  construction (handshake "arrow" bits + alternating-bit double collect);
- :class:`~repro.snapshot.sequenced.SequencedScannableMemory` — the
  unbounded sequence-number double-collect comparator.

:mod:`repro.snapshot.properties` checks P1–P3 over recorded traces, using
ghost write sequence numbers that the implementations carry for verification
only (the algorithms never read them).
"""

from repro.snapshot.arrows import ArrowScannableMemory
from repro.snapshot.embedded import EmbeddedScanSnapshot
from repro.snapshot.interface import ScannableMemory
from repro.snapshot.properties import (
    PropertyViolation,
    check_p1_regularity,
    check_p2_snapshot,
    check_p3_serializability,
    check_all_properties,
)
from repro.snapshot.sequenced import SequencedScannableMemory

__all__ = [
    "ArrowScannableMemory",
    "EmbeddedScanSnapshot",
    "PropertyViolation",
    "ScannableMemory",
    "SequencedScannableMemory",
    "check_all_properties",
    "check_p1_regularity",
    "check_p2_snapshot",
    "check_p3_serializability",
]
