"""Abstract interface of a scannable memory."""

from __future__ import annotations

import abc
from typing import Any, Generator

from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext


class ScannableMemory(abc.ABC):
    """n-slot single-writer-per-slot shared memory with snapshot scans.

    Processes use the two operations as sub-generators::

        view = yield from mem.scan(ctx)     # list of n values
        yield from mem.write(ctx, value)    # writes slot ctx.pid

    Implementations record ``scan``/``write`` spans in the trace, with ghost
    write sequence numbers in ``span.meta`` so that the §2 properties P1–P3
    can be checked post-hoc.  Ghost state is never read by the algorithms.
    """

    name: str
    n: int

    @abc.abstractmethod
    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """Write ``value`` into slot ``ctx.pid``."""

    @abc.abstractmethod
    def scan(self, ctx: ProcessContext) -> Generator[OpIntent, None, list]:
        """Return a snapshot view: a list of n slot values."""

    @abc.abstractmethod
    def peek_view(self) -> list:
        """Current slot values (test/adversary access, not a process step)."""

    @abc.abstractmethod
    def scan_attempts(self) -> int:
        """Total number of collect rounds executed by all scans so far."""
