"""Wait-free snapshot via embedded scans (Afek et al. 1990 style).

The paper's arrow scan (§2.2) is deliberately *not* wait-free: an adversary
scheduling fresh writes forever starves it (which the consensus protocol
tolerates, since someone's write completing is progress enough).  A year
after the paper, Afek, Attiya, Dolev, Gafni, Merritt and Shavit showed how
to make single-writer snapshots wait-free by **helping**: every write first
performs a scan of its own and publishes the result alongside its value.

A scanner collects repeatedly; if two consecutive collects are identical it
has a direct snapshot; otherwise some process moved — and a process
observed to move *twice* during the scan performed its embedded scan
entirely within the scanner's interval, so its published view can be
**borrowed** as the result.  At most n+1 collects are ever needed: each
retry adds a mover, and the (n+1)-st repeats one.

This implementation uses unbounded sequence numbers (like the original);
it exists as the wait-free comparator for §2's construction — strictly
stronger liveness, bought with O(n) values per register and the unbounded
counter the reproduced paper's program would next want to remove.  It also
plugs into the consensus protocol (``snapshot_kind="embedded"``) for the
E12 substrate ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, TYPE_CHECKING

from repro.registers.atomic import RegisterArray
from repro.registers.base import MemoryAudit
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext
from repro.snapshot.interface import ScannableMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


@dataclass(frozen=True, slots=True)
class _Cell:
    # Slotted: one cell per register write, and the memory audit measures
    # each one on the spot (the measurers understand ``__slots__`` objects,
    # so audit numbers are unchanged by the slotting).
    value: Any
    seq: int
    view: tuple  # the writer's embedded snapshot
    view_wseqs: tuple  # ghost ids of the embedded snapshot's writes


class EmbeddedScanSnapshot(ScannableMemory):
    """Wait-free single-writer snapshot with write-embedded scans."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        initial: Any = None,
        audit: MemoryAudit | None = None,
    ):
        self.name = name
        self.n = n
        self.initial = initial
        self._attempts = 0
        self._scans = sim.metrics.counter("snapshot.scans", object=name)
        self._scan_rounds = sim.metrics.histogram("snapshot.scan_rounds", object=name)
        self._retries = sim.metrics.counter("snapshot.scan_retries", object=name)
        self._writes = sim.metrics.counter("snapshot.writes", object=name)
        self._borrows = sim.metrics.counter("snapshot.borrowed_views", object=name)
        initial_cell = _Cell(
            value=initial,
            seq=0,
            view=(initial,) * n,
            view_wseqs=(0,) * n,
        )
        self.cells = RegisterArray(
            sim, f"{name}.V", n, initial=initial_cell, audit=audit
        )
        sim.register_shared(name, self)

    # -- internals -------------------------------------------------------------

    def _collect(
        self, ctx: ProcessContext, into: list[_Cell]
    ) -> Generator[OpIntent, None, list[_Cell]]:
        into.clear()
        for reg in self.cells.registers:
            cell = yield from reg.read(ctx)
            into.append(cell)
        return into

    def _scan_internal(
        self, ctx: ProcessContext
    ) -> Generator[OpIntent, None, tuple[tuple, tuple, int]]:
        """Return (view, ghost wseqs, collect rounds)."""
        moved: set[int] = set()
        rounds = 1
        self._attempts += 1
        # Two alternating collect buffers, local to this scan call: the
        # previous round's "new" becomes "old", and the retired buffer is
        # refilled instead of a fresh list being allocated every round.
        buf_a: list[_Cell] = []
        buf_b: list[_Cell] = []
        old = yield from self._collect(ctx, buf_a)
        while True:
            rounds += 1
            self._attempts += 1
            self._retries.inc()
            new = yield from self._collect(ctx, buf_b if old is buf_a else buf_a)
            movers = [j for j in range(self.n) if new[j].seq != old[j].seq]
            if not movers:
                view = tuple(cell.value for cell in new)
                wseqs = tuple(cell.seq for cell in new)
                self._scan_rounds.observe(rounds)
                return view, wseqs, rounds
            for j in movers:
                if j in moved:
                    # j completed a whole write inside this scan: its
                    # embedded view is a snapshot within our interval.
                    self._borrows.inc()
                    self._scan_rounds.observe(rounds)
                    return new[j].view, new[j].view_wseqs, rounds
                moved.add(j)
            old = new

    # -- operations --------------------------------------------------------------

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """Scan (helping), then publish value + snapshot in one write."""
        i = ctx.pid
        span = ctx.begin_span("write", self.name, value)
        self._writes.inc()
        view, wseqs, _ = yield from self._scan_internal(ctx)
        current: _Cell = self.cells[i].peek()  # own register: local knowledge
        cell = _Cell(value=value, seq=current.seq + 1, view=view, view_wseqs=wseqs)
        span.meta["wseq"] = cell.seq
        yield from self.cells[i].write(ctx, cell)
        ctx.end_span(span)

    def scan(self, ctx: ProcessContext) -> Generator[OpIntent, None, list]:
        span = ctx.begin_span("scan", self.name)
        self._scans.inc()
        view, wseqs, rounds = yield from self._scan_internal(ctx)
        span.meta["wseqs"] = wseqs
        span.meta["rounds"] = rounds
        ctx.end_span(span, view)
        return list(view)

    # -- inspection -----------------------------------------------------------------

    def peek_view(self) -> list:
        return [cell.value for cell in self.cells.peek_all()]

    def scan_attempts(self) -> int:
        return self._attempts

    def max_collects_bound(self) -> int:
        """Wait-freedom certificate: a scan needs at most n+2 collects."""
        return self.n + 2
