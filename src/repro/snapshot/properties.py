"""Trace checkers for the scannable-memory properties P1–P3 (§2.1).

The checkers work on the high-level spans recorded by the scannable-memory
implementations.  Each ``write`` span carries a ghost sequence number
(``span.meta["wseq"]``) and each ``scan`` span carries the per-slot sequence
numbers of the writes whose values it returned (``span.meta["wseqs"]``);
sequence number 0 denotes the initial value.  Ghost state identifies *which*
write produced a returned value even when user values repeat; the algorithms
themselves never read it.

Definitions (2.1 of the paper), over completed spans:

- ``a`` **precedes** ``b``: ``a.response < b.invoke``.
- write ``W`` (by process ``p``) **potentially coexists** with operation
  ``O``: ``O`` does not precede ``W``, and there is no other write ``W'`` by
  ``p`` with ``W`` preceding ``W'`` and ``W'`` preceding ``O`` — i.e. a
  point in global time exists at which ``W``'s value was (or was about to
  be) current while ``O`` was in progress.

Checked properties:

- **P1 regularity**: every value returned by a scan comes from a write that
  potentially coexists with the scan.
- **P2 snapshot**: for any two values in one view, one of the producing
  writes potentially coexists with the other.
- **P3 scan serializability**: any two views are slot-wise comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.runtime.events import OpSpan
from repro.runtime.trace import Trace


@dataclass
class PropertyViolation:
    """One violated property instance, with the spans that witness it."""

    property_name: str
    description: str
    spans: tuple[OpSpan, ...] = ()

    def __str__(self) -> str:
        lines = [f"{self.property_name}: {self.description}"]
        lines.extend(f"  {s}" for s in self.spans)
        return "\n".join(lines)


_INITIAL = OpSpan(
    span_id=-1,
    pid=-1,
    kind="write",
    target="<initial>",
    invoke_step=-1,
    response_step=-1,
)


def _writes_by_pid(trace: Trace, name: str, n: int) -> list[dict[int, OpSpan]]:
    """Per-pid map from ghost wseq to the write span that carries it."""
    table: list[dict[int, OpSpan]] = [{0: _INITIAL} for _ in range(n)]
    for span in trace.spans_of_kind("write", name):
        table[span.pid][span.meta["wseq"]] = span
    return table


def _scans(trace: Trace, name: str) -> list[OpSpan]:
    return trace.spans_of_kind("scan", name)


def _potentially_coexists(
    write: OpSpan, op: OpSpan, writes_of_pid: dict[int, OpSpan], wseq: int
) -> bool:
    """Definition 2.1, using ghost wseqs to find same-process successors."""
    if op.precedes(write):
        return False
    successor = writes_of_pid.get(wseq + 1)
    if successor is not None and not successor.is_open:
        if write.precedes(successor) and successor.precedes(op):
            return False
    return True


def check_p1_regularity(trace: Trace, name: str, n: int) -> list[PropertyViolation]:
    """Every returned value's write potentially coexists with the scan."""
    writes = _writes_by_pid(trace, name, n)
    violations = []
    for scan in _scans(trace, name):
        wseqs = scan.meta["wseqs"]
        for j in range(n):
            write = writes[j].get(wseqs[j])
            if write is None:
                violations.append(
                    PropertyViolation(
                        "P1",
                        f"scan returned value of unknown write wseq={wseqs[j]} "
                        f"of process {j}",
                        (scan,),
                    )
                )
                continue
            if not _potentially_coexists(write, scan, writes[j], wseqs[j]):
                violations.append(
                    PropertyViolation(
                        "P1",
                        f"slot {j}: returned write does not potentially "
                        f"coexist with the scan",
                        (write, scan),
                    )
                )
    return violations


def check_p2_snapshot(trace: Trace, name: str, n: int) -> list[PropertyViolation]:
    """Any two returned values' writes potentially coexist (one way or both)."""
    writes = _writes_by_pid(trace, name, n)
    violations = []
    for scan in _scans(trace, name):
        wseqs = scan.meta["wseqs"]
        for i in range(n):
            for j in range(i + 1, n):
                wi = writes[i].get(wseqs[i])
                wj = writes[j].get(wseqs[j])
                if wi is None or wj is None:
                    continue  # reported by P1
                if not (
                    _potentially_coexists(wi, wj, writes[i], wseqs[i])
                    or _potentially_coexists(wj, wi, writes[j], wseqs[j])
                ):
                    violations.append(
                        PropertyViolation(
                            "P2",
                            f"slots {i},{j}: neither returned write "
                            f"potentially coexists with the other",
                            (wi, wj, scan),
                        )
                    )
    return violations


def check_p3_serializability(
    trace: Trace, name: str, n: int
) -> list[PropertyViolation]:
    """All views are slot-wise comparable (scans serialize)."""
    violations = []
    scans = _scans(trace, name)
    for a in range(len(scans)):
        for b in range(a + 1, len(scans)):
            sa, sb = scans[a], scans[b]
            va, vb = sa.meta["wseqs"], sb.meta["wseqs"]
            a_le_b = all(x <= y for x, y in zip(va, vb))
            b_le_a = all(y <= x for x, y in zip(va, vb))
            if not (a_le_b or b_le_a):
                violations.append(
                    PropertyViolation(
                        "P3",
                        f"incomparable views {va} vs {vb}",
                        (sa, sb),
                    )
                )
    return violations


def check_all_properties(
    trace: Trace, name: str, n: int
) -> list[PropertyViolation]:
    """Run P1, P2 and P3; return all violations (empty list = all hold)."""
    violations: list[PropertyViolation] = []
    violations.extend(check_p1_regularity(trace, name, n))
    violations.extend(check_p2_snapshot(trace, name, n))
    violations.extend(check_p3_serializability(trace, name, n))
    return violations


def scan_round_counts(trace: Trace, name: str) -> list[int]:
    """Collect-round counts of all completed scans (contention metric, E7)."""
    return [s.meta.get("rounds", 1) for s in _scans(trace, name)]


def assert_no_violations(violations: Iterable[PropertyViolation]) -> None:
    """Raise ``AssertionError`` with a readable report if any violation."""
    violations = list(violations)
    if violations:
        report = "\n".join(str(v) for v in violations)
        raise AssertionError(f"{len(violations)} property violations:\n{report}")
