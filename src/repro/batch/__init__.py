"""Batched struct-of-arrays execution: many simulations per process.

:mod:`repro.batch.engine` is the fused step-loop interpreter (lanes of
independent seeded ADS runs, bit-identical to the serial runtime);
:mod:`repro.batch.dispatch` wires it under the campaign entry points as
a ``batch_size`` knob that composes with the process pool.  See
``docs/performance.md`` ("Batched execution").
"""

from repro.batch.dispatch import (
    BATCH_ENV,
    make_batch_task,
    resolve_batch_size,
    run_tasks_batched,
)
from repro.batch.engine import LaneResult, LaneSpec, run_lanes

__all__ = [
    "BATCH_ENV",
    "LaneResult",
    "LaneSpec",
    "make_batch_task",
    "resolve_batch_size",
    "run_lanes",
    "run_tasks_batched",
]
