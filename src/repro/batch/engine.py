"""Struct-of-arrays execution of many independent ADS consensus runs.

One process, one fused step loop, many *lanes*: each lane is an
independent ``(seed, inputs)`` simulation of the default
:class:`~repro.consensus.ads.AdsConsensus` protocol under the default
:class:`~repro.runtime.scheduler.RandomScheduler`.  Instead of building a
generator pipeline per process per lane (registers → snapshot → protocol
→ ``Simulation.step``), the engine lays the whole simulation state out as
flat per-lane arrays —

- ``arrows``   — the n×n one-bit write-arrow registers, flattened;
- ``V``        — the n scan registers, each a ``(cell, toggle)`` pair;
- ``cells``    — each process's local protocol cell as a plain tuple
  ``(pref, coins, current_coin, edges)``;
- ``phase``/``pos`` — each process's position inside the fixed atomic-op
  script of the ADS round (raise arrows → publish V → arm → first
  collect → second collect → read arrows → compute);
- walk counters, round numbers and strip edge counters ride inside the
  cell tuples exactly as their object counterparts do

— and advances lanes through one dispatch loop with no generator resumes,
no ``OpIntent`` objects and no per-step list rebuilds.

**Bit-identical by construction.**  The scheduler stream is the serial
one: per lane, ``derive_rng(seed, "random-scheduler").getrandbits`` with
the exact inlined rejection loop of ``RandomScheduler.choose`` (PR 5),
drawn over the same pid-ascending runnable list that
``Simulation.runnable_pids`` would produce.  Coin flips consume
``derive_rng(seed, "process", pid).random()`` just like the serial
``ctx.rng``.  Every state transition mirrors one atomic step of the
generator runtime — a pending operation executes on the step *after* it
was yielded, so decisions land on the very step counts the serial
``Simulation`` reports.  Lanes retire individually on decide; a slow lane
never blocks the batch.

**Fallback, never divergence.**  Anything outside the fast path — a
non-default protocol configuration, ``n < 2``, non-binary inputs, an
ill-formed counter decode, a walk overflow, an exhausted step budget —
marks the lane with a ``fallback`` reason instead of guessing.  Callers
(see :mod:`repro.batch.dispatch`) re-run fallback lanes through the
ordinary serial entry point, which reproduces the serial result *or the
serial exception* exactly.  The fast path is an optimisation, never a
semantic fork.

The graph work of the protocol step (counter decode, longest-path
distances, leader sets, counter increments) is memoised on the edge-row
tuples: independent lanes revisit the same small strip-graph states
constantly, so across a batch the amortised compute cost per step drops
well below the serial interpreter's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.coin.logic import default_m
from repro.runtime.rng import derive_rng

_NEG_INF = float("-inf")

#: Fast-path protocol constants — the ``AdsConsensus()`` defaults.  A lane
#: needing anything else must come in through the serial fallback.
K = 2
_SLOTS = K + 1  # coin slots per cell
_SIZE = 3 * K  # edge-counter modulus
_B = 2  # barrier multiplier b

#: Default step budget, matching ``ConsensusProtocol.run``.
DEFAULT_MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class LaneSpec:
    """One independent simulation: default ADS + random scheduler.

    ``inputs`` defines ``n``; ``seed`` roots every RNG stream exactly as
    the serial path does (scheduler from ``(seed, "random-scheduler")``,
    process coins from ``(seed, "process", pid)``).
    """

    inputs: tuple[int, ...]
    seed: int
    max_steps: int = DEFAULT_MAX_STEPS

    @property
    def n(self) -> int:
        return len(self.inputs)


@dataclass
class LaneResult:
    """A lane's outcome, field-compatible with the serial ``outcome()``.

    ``fallback`` is ``None`` when the fast path finished the lane; any
    other value is the reason the lane must be re-run serially (its other
    fields are then meaningless and must not be read).
    """

    spec: LaneSpec
    decisions: dict[int, Any] = field(default_factory=dict)
    total_steps: int = 0
    steps_by_pid: dict[int, int] = field(default_factory=dict)
    rounds_by_pid: dict[int, int] = field(default_factory=dict)
    flips_by_pid: dict[int, int] = field(default_factory=dict)
    scans_by_pid: dict[int, int] = field(default_factory=dict)
    fallback: str | None = None
    schedule: list[int] | None = None

    def max_rounds(self) -> int:
        return max(self.rounds_by_pid.values(), default=0)


class _Unsupported(Exception):
    """A state the fast path refuses to interpret (→ serial fallback)."""


class _Caches:
    """Memoised strip-graph computations, shared across a batch's lanes.

    Every entry is a pure function of edge-row tuples with the fast-path
    constants fixed, so sharing across lanes (and across calls) is sound.
    Failed computations cache their ``_Unsupported`` marker too — a state
    the decoder rejects once it would reject every time.
    """

    __slots__ = ("decode", "dists_from", "dists_to", "leaders", "inc")

    #: Overflow guard: the reachable edge-row state space is tiny for the
    #: small ``n`` the campaigns sweep, but a service process batching
    #: forever should not grow without bound.
    LIMIT = 1 << 20

    def __init__(self) -> None:
        self.decode: dict[Any, Any] = {}
        self.dists_from: dict[Any, Any] = {}
        self.dists_to: dict[Any, Any] = {}
        self.leaders: dict[Any, Any] = {}
        self.inc: dict[Any, Any] = {}

    def trim(self) -> None:
        for cache in (
            self.decode,
            self.dists_from,
            self.dists_to,
            self.leaders,
            self.inc,
        ):
            if len(cache) > self.LIMIT:
                cache.clear()


def _decode(erows: tuple, n: int):
    """``decode_graph`` specialised: edge rows → (weight matrix, edges).

    ``W[i][j]`` is the weight of edge i→j or ``None``; ``edges`` is the
    relaxation worklist as ``(src, dst, weight)`` triples.  A modular tie
    between the two directions is ill-formed, exactly as in
    ``repro.strip.distance_graph.decode_graph``.
    """
    W = [[None] * n for _ in range(n)]
    edges = []
    for i in range(n):
        row_i = erows[i]
        Wi = W[i]
        for j in range(i + 1, n):
            d_ij = (row_i[j] - erows[j][i]) % _SIZE
            if d_ij == 0:
                Wi[j] = 0
                W[j][i] = 0
                edges.append((i, j, 0))
                edges.append((j, i, 0))
            else:
                d_ji = _SIZE - d_ij
                if d_ij < d_ji:
                    Wi[j] = d_ij
                    edges.append((i, j, d_ij))
                elif d_ji < d_ij:
                    W[j][i] = d_ji
                    edges.append((j, i, d_ji))
                else:
                    raise _Unsupported(f"ill-formed counters between {i} and {j}")
    return W, edges


def _relax(edges: list, n: int, source: int, forward: bool) -> list:
    """Longest-path distances from/to ``source`` (``DistanceGraph``'s
    fixpoint relaxation, same round bound, same positive-cycle guard)."""
    dist = [_NEG_INF] * n
    dist[source] = 0
    for _ in range(n + 1):
        changed = False
        for u, v, w in edges:
            if not forward:
                u, v = v, u
            du = dist[u]
            if du != _NEG_INF and du + w > dist[v]:
                dist[v] = du + w
                changed = True
        if not changed:
            break
    else:
        raise _Unsupported("positive cycle in strip graph")
    return dist


class _Lane:
    """One simulation's flattened state inside the batch."""

    __slots__ = (
        "spec",
        "n",
        "m",
        "bn",
        "caches",
        "others",
        "armidx",
        "raisidx",
        "V",
        "arrows",
        "cells",
        "last_written",
        "toggle",
        "phase",
        "pos",
        "clean",
        "first",
        "second",
        "steps",
        "rounds",
        "flips",
        "scans",
        "rand",
        "grb",
        "runnable",
        "nrun",
        "kbits",
        "step_count",
        "decisions",
        "done",
        "fallback",
        "schedule",
        "viewbuf",
    )

    def __init__(self, spec: LaneSpec, caches: _Caches, record: bool) -> None:
        self.spec = spec
        self.caches = caches
        self.done = False
        self.fallback: str | None = None
        self.schedule: list[int] | None = [] if record else None
        self.step_count = 0
        self.decisions: dict[int, Any] = {}
        n = self.n = len(spec.inputs)
        self.cells: list = [None] * n
        if n < 2:
            # The single-process run decides during its V-write step; the
            # phase script below models the n >= 2 scan/compute shape.
            self.fallback = "fast path needs n >= 2"
            return
        if any(v not in (0, 1) for v in spec.inputs):
            self.fallback = "fast path needs binary inputs"
            return
        self.m = default_m(_B, n)
        self.bn = _B * n
        self.others = [[j for j in range(n) if j != i] for i in range(n)]
        self.armidx = [[i * n + j for j in self.others[i]] for i in range(n)]
        self.raisidx = [[j * n + i for j in self.others[i]] for i in range(n)]
        initial = (None, (0,) * _SLOTS, 0, (0,) * n)
        self.V = [(initial, 0) for _ in range(n)]
        self.arrows = [0] * (n * n)
        self.last_written = [initial] * n
        self.toggle = [0] * n
        self.phase = [0] * n
        self.pos = [0] * n
        self.clean = [True] * n
        self.first = [[None] * (n - 1) for _ in range(n)]
        self.second = [[None] * (n - 1) for _ in range(n)]
        self.steps = [0] * n
        self.rounds = [0] * n
        self.flips = [0] * n
        self.scans = [0] * n
        self.viewbuf: list = [None] * n
        self.rand = [derive_rng(spec.seed, "process", pid).random for pid in range(n)]
        self.grb = derive_rng(spec.seed, "random-scheduler").getrandbits
        self.runnable = list(range(n))
        self.nrun = n
        self.kbits = n.bit_length()
        # Prime each process: the serial generator runs `_inc` on the
        # initial cell, installs the input preference, and parks on its
        # first pending write-arrow op — all before any step is granted.
        zero_rows = tuple((0,) * n for _ in range(n))
        for pid in range(n):
            new_row = self._inc_row(pid, zero_rows)
            if new_row is None:
                return  # fallback already set
            self.rounds[pid] = 1
            # ``_inc`` on the initial cell: the round pointer moves 0 → 1
            # and the slot after it is zeroed (a no-op on all-zero coins).
            self.cells[pid] = (spec.inputs[pid], (0,) * _SLOTS, 1, new_row)

    def _inc_row(self, i: int, erows: tuple):
        """Memoised ``inc_counters`` on ``erows`` with ``rows[i]`` already
        equal to the local cell's row (always true at our call sites).
        Returns the new row tuple, or ``None`` after marking fallback."""
        caches = self.caches
        key = (i, erows)
        cached = caches.inc.get(key)
        if cached is None:
            try:
                cached = self._compute_inc_row(i, erows)
            except _Unsupported as exc:
                cached = exc
            caches.inc[key] = cached
        if type(cached) is _Unsupported:
            self.fallback = str(cached)
            return None
        return cached

    def _compute_inc_row(self, i: int, erows: tuple) -> tuple:
        n = self.n
        W, edges = self._graph(erows)
        dists_to_i = self._dists(erows, edges, i, forward=False)
        row = list(erows[i])
        Wi = W[i]
        for j in range(n):
            if j == i:
                continue
            w_ji = W[j][i]
            closes_gap = False
            if w_ji is not None:
                dists_to_j = self._dists(erows, edges, j, forward=False)
                for k in range(n):
                    dk = dists_to_j[k]
                    if dk != _NEG_INF and dk + w_ji == dists_to_i[k]:
                        closes_gap = True
                        break
            w_ij = Wi[j]
            if closes_gap or (w_ij is not None and w_ij < K):
                row[j] = (row[j] + 1) % _SIZE
        return tuple(row)

    def _graph(self, erows: tuple):
        """Memoised decode; raises ``_Unsupported`` on ill-formed rows."""
        caches = self.caches
        cached = caches.decode.get(erows)
        if cached is None:
            try:
                cached = _decode(erows, self.n)
            except _Unsupported as exc:
                cached = exc
            caches.decode[erows] = cached
        if type(cached) is _Unsupported:
            raise cached
        return cached

    def _dists(self, erows: tuple, edges: list, source: int, forward: bool):
        cache = self.caches.dists_from if forward else self.caches.dists_to
        key = (erows, source)
        cached = cache.get(key)
        if cached is None:
            try:
                cached = _relax(edges, self.n, source, forward)
            except _Unsupported as exc:
                cached = exc
            cache[key] = cached
        if type(cached) is _Unsupported:
            raise cached
        return cached

    def _leader_pids(self, erows: tuple, W: list) -> tuple:
        caches = self.caches
        cached = caches.leaders.get(erows)
        if cached is None:
            n = self.n
            cached = tuple(
                i
                for i in range(n)
                if all(W[i][j] is not None for j in range(n) if j != i)
            )
            caches.leaders[erows] = cached
        return cached

    # ------------------------------------------------------------------
    # The fused step loop.
    # ------------------------------------------------------------------

    def advance(self, budget: int) -> None:
        """Run up to ``budget`` atomic steps of this lane."""
        nrun = self.nrun
        if nrun == 0 or self.fallback is not None:
            return
        remaining = self.spec.max_steps - self.step_count
        if remaining <= 0:
            # Serial ``Simulation.run`` raises StepBudgetExceeded here.
            self.fallback = "step budget exhausted"
            return
        todo = budget if budget < remaining else remaining
        n = self.n
        last = n - 2
        runnable = self.runnable
        kbits = self.kbits
        grb = self.grb
        phase = self.phase
        pos = self.pos
        clean = self.clean
        V = self.V
        arrows = self.arrows
        others = self.others
        armidx = self.armidx
        raisidx = self.raisidx
        firsts = self.first
        seconds = self.second
        steps = self.steps
        record = self.schedule
        count = 0
        while count < todo:
            # RandomScheduler.choose, inlined bit-for-bit (PR 5): draw
            # bit_length(len(runnable)) bits, reject until < len(runnable).
            r = grb(kbits)
            while r >= nrun:
                r = grb(kbits)
            i = runnable[r]
            if record is not None:
                record.append(i)
            steps[i] += 1
            count += 1
            ph = phase[i]
            k = pos[i]
            if ph == 3:  # first collect: read V[j]
                firsts[i][k] = V[others[i][k]]
                if k < last:
                    pos[i] = k + 1
                else:
                    phase[i] = 4
                    pos[i] = 0
            elif ph == 4:  # second collect + incremental double-read check
                s = V[others[i][k]]
                seconds[i][k] = s
                f = firsts[i][k]
                if f is not s and (f[1] != s[1] or f[0] != s[0]):
                    clean[i] = False
                if k < last:
                    pos[i] = k + 1
                else:
                    phase[i] = 5
                    pos[i] = 0
            elif ph == 5:  # read own arm arrow A[i][j]
                if arrows[armidx[i][k]]:
                    clean[i] = False
                if k < last:
                    pos[i] = k + 1
                elif not clean[i]:
                    phase[i] = 2  # dirty scan: re-arm and retry
                    pos[i] = 0
                    clean[i] = True
                else:
                    # Clean scan: the protocol step runs on this same
                    # atomic step (the serial generator computes and —
                    # on decide — StopIterates inside this advance).
                    if self._protocol_step(i):
                        runnable.remove(i)
                        nrun -= 1
                        if nrun == 0:
                            break
                        kbits = nrun.bit_length()
                    elif self.fallback is not None:
                        break
            elif ph == 2:  # arm: write A[i][j] := 0
                arrows[armidx[i][k]] = 0
                if k < last:
                    pos[i] = k + 1
                else:
                    phase[i] = 3
                    pos[i] = 0
            elif ph == 0:  # raise write arrows: A[j][i] := 1
                arrows[raisidx[i][k]] = 1
                if k < last:
                    pos[i] = k + 1
                else:
                    phase[i] = 1
                    pos[i] = 0
            else:  # ph == 1: publish the V register (toggle flips)
                t = self.toggle[i] ^ 1
                self.toggle[i] = t
                cell = self.cells[i]
                V[i] = (cell, t)
                self.last_written[i] = cell
                phase[i] = 2
                pos[i] = 0
                clean[i] = True
        self.step_count += count
        self.nrun = nrun
        self.kbits = kbits
        if nrun == 0:
            self.done = True
        elif self.fallback is None and self.step_count >= self.spec.max_steps:
            self.fallback = "step budget exhausted"

    def _protocol_step(self, i: int) -> bool:
        """One ADS round decision for ``i`` after a clean scan.

        Returns True when ``i`` decided (the lane retires the pid); on an
        unsupported state sets ``self.fallback`` and returns False.
        """
        self.scans[i] += 1
        n = self.n
        view = self.viewbuf
        others_i = self.others[i]
        sec = self.second[i]
        for k in range(n - 1):
            view[others_i[k]] = sec[k][0]
        mine = self.last_written[i]
        view[i] = mine
        erows = tuple(cell[3] for cell in view)
        try:
            W, edges = self._graph(erows)
        except _Unsupported as exc:
            self.fallback = str(exc)
            return False
        pref_i = mine[0]
        # (1) Decide: i leads everyone, and every disagreeing process is
        # at least K behind on the strip.
        if pref_i is not None:
            Wi = W[i]
            is_leader = True
            for j in range(n):
                if j != i and Wi[j] is None:
                    is_leader = False
                    break
            if is_leader:
                try:
                    dists = self._dists(erows, edges, i, forward=True)
                except _Unsupported as exc:
                    self.fallback = str(exc)
                    return False
                decide = True
                for j in range(n):
                    if j != i and view[j][0] != pref_i and dists[j] < K:
                        decide = False
                        break
                if decide:
                    self.decisions[i] = pref_i
                    return True
        # (2) Adopt the leaders' agreed preference, if any.
        leaders = self._leader_pids(erows, W)
        leaders_value = None
        if leaders:
            values = {view[lead][0] for lead in leaders}
            if len(values) == 1:
                value = values.pop()
                if value is not None:
                    leaders_value = value
        cell = self.cells[i]
        if leaders_value is not None:
            new_cell = self._advance_cell(i, cell, erows, leaders_value)
            if new_cell is None:
                return False
        elif pref_i is not None:
            # (3) Withdraw a preference the leaders do not agree on.
            new_cell = (None, cell[1], cell[2], cell[3])
        else:
            # (4) Resolve by the shared coin.
            new_cell = self._coin_step(i, cell, view, erows, W)
            if new_cell is None:
                return False
        self.cells[i] = new_cell
        self.phase[i] = 0
        self.pos[i] = 0
        return False

    def _advance_cell(self, i: int, cell: tuple, erows: tuple, pref):
        """``_inc`` + set preference: move to the next round slot, zero
        the slot after it, bump this row's edge counters."""
        new_row = self._inc_row(i, erows)
        if new_row is None:
            return None
        pointer = (cell[2] + 1) % _SLOTS
        coins = list(cell[1])
        coins[(pointer + 1) % _SLOTS] = 0
        self.rounds[i] += 1
        return (pref, tuple(coins), pointer, new_row)

    def _coin_step(self, i: int, cell: tuple, view: list, erows: tuple, W: list):
        """``_resolve_conflict``: read the shared coin, flip or adopt."""
        nslot = (cell[2] + 1) % _SLOTS
        own = cell[1][nslot]
        m = self.m
        if own < -m or own > m:
            coin = 1  # bounded-overflow rule: deterministic heads
        else:
            total = own
            for j in range(self.n):
                if j == i:
                    continue
                w = W[j][i]
                if w is not None and w < K:
                    vj = view[j]
                    total += vj[1][(vj[2] - w + 1) % _SLOTS]
            if total > self.bn:
                coin = 1
            elif total < -self.bn:
                coin = 0
            else:
                coin = None
        if coin is None:
            # Flip: one ctx.rng draw, one ±1 walk step on the next slot.
            heads = self.rand[i]() < 0.5
            new_value = own + (1 if heads else -1)
            if new_value < -(m + 1) or new_value > m + 1:
                self.fallback = "walk step outside bounded counter range"
                return None
            self.flips[i] += 1
            coins = list(cell[1])
            coins[nslot] = new_value
            return (cell[0], tuple(coins), cell[2], cell[3])
        return self._advance_cell(i, cell, erows, coin)

    def result(self) -> LaneResult:
        n_range = range(self.n)
        return LaneResult(
            spec=self.spec,
            decisions=dict(self.decisions),
            total_steps=self.step_count,
            steps_by_pid={pid: self.steps[pid] for pid in n_range}
            if self.fallback is None
            else {},
            rounds_by_pid={pid: self.rounds[pid] for pid in n_range}
            if self.fallback is None
            else {},
            flips_by_pid={pid: self.flips[pid] for pid in n_range}
            if self.fallback is None
            else {},
            scans_by_pid={pid: self.scans[pid] for pid in n_range}
            if self.fallback is None
            else {},
            fallback=self.fallback,
            schedule=self.schedule,
        )


#: Steps each active lane advances per round-robin turn.  Large enough to
#: amortise the outer loop, small enough that retiring lanes free their
#: slot quickly.
DEFAULT_CHUNK = 4096

#: Shared memo caches for the module's default entry point.
_SHARED_CACHES = _Caches()


def run_lanes(
    specs: "list[LaneSpec] | tuple[LaneSpec, ...]",
    chunk: int = DEFAULT_CHUNK,
    record_schedule: bool = False,
) -> list[LaneResult]:
    """Advance every lane to completion (or fallback); results in order.

    Lanes retire individually — the round-robin outer loop drops a lane
    the moment it decides everywhere (or falls back), so one adversarial
    slow lane costs only its own steps, not the batch's.
    """
    caches = _SHARED_CACHES
    lanes = [_Lane(spec, caches, record_schedule) for spec in specs]
    active = [lane for lane in lanes if not lane.done and lane.fallback is None]
    while active:
        still = []
        for lane in active:
            lane.advance(chunk)
            if not lane.done and lane.fallback is None:
                still.append(lane)
        active = still
    caches.trim()
    return [lane.result() for lane in lanes]
