"""Wiring the struct-of-arrays engine under the campaign entry points.

The contract with callers (``repeat_runs``, ``Sweep``, ``fuzz_consensus``,
``run_mutation_campaign``) is a *drop-in lane under the task list*: tasks
are grouped into consecutive batches, each batch becomes one pool task
(so batching composes with ``--workers`` — every worker drains whole
batches instead of single cells), and the flat results come back in
submission order, bit-identical to the serial path.

Two levels of speedup, both semantics-free:

- **Grouped dispatch** (any task): batch-of-N amortises fork and IPC per
  task by N.  This is what fuzz cells and campaign cells get — their
  per-cell fault plans and watchdogs stay on the ordinary serial
  interpreter, just N cells per pool round-trip.
- **Fused lanes** (tasks that opt in): a task function may carry two
  attributes — ``batch_lane(task) -> LaneSpec | None`` and
  ``batch_value(task, LaneResult) -> value | None`` — mapping a task into
  the fast interpreter and its outcome back into the task's value.
  Returning ``None`` from either hook (or a lane finishing with a
  ``fallback`` reason) drops that one task back onto ``run_task``
  unchanged, which reproduces the serial result or the serial exception
  exactly.  ``repro.workloads.make_sweep_runner`` opts the canonical
  ADS/random sweep in this way.

Checkpointing and ledger identity are untouched: results are reported
through ``on_result`` with the task's original flat index, so
``LedgerCheckpointer`` flushes the same records in the same order and the
per-cell fingerprints never see the batch boundary.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Sequence

from repro.batch.engine import LaneResult, LaneSpec, run_lanes
from repro.resilience.policy import PartialResult

#: Environment variable read when no explicit batch size is passed —
#: the batched analogue of ``REPRO_WORKERS``.
BATCH_ENV = "REPRO_BATCH"

_UNSET = object()


def resolve_batch_size(batch_size: int | None = None) -> int | None:
    """Validate a batch size, falling back to ``REPRO_BATCH``.

    Unlike ``--workers`` there is no "0 = auto" convention: a batch is a
    lane count, so only positive integers make sense.  ``None`` (and an
    unset/empty environment variable) means batching is off.
    """
    if batch_size is None:
        raw = os.environ.get(BATCH_ENV, "").strip()
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{BATCH_ENV}={raw!r} is not an integer; set it to a "
                "positive lane count (unset it to disable batching)"
            ) from None
        if value < 1:
            raise ValueError(
                f"{BATCH_ENV}={raw!r} must be >= 1 (lanes per batch); "
                "unset it to disable batching"
            )
        return value
    if isinstance(batch_size, bool) or not isinstance(batch_size, int):
        raise TypeError(
            f"batch_size must be a positive integer or None, got {batch_size!r}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return batch_size


def make_batch_task(run_task: Callable[[Any], Any]) -> Callable[[list], list]:
    """Lift a per-task function to a per-batch function.

    The returned callable runs one group of tasks: fused lanes for every
    task the hooks accept, the ordinary ``run_task`` for the rest (and
    for any lane that fell back), preserving group order.
    """
    lane_of = getattr(run_task, "batch_lane", None)
    value_of = getattr(run_task, "batch_value", None)
    fused = lane_of is not None and value_of is not None

    def run_batch(group: Sequence[Any]) -> list:
        group = list(group)
        values: list[Any] = [_UNSET] * len(group)
        if fused:
            lanes: list[tuple[int, LaneSpec]] = []
            for position, task in enumerate(group):
                spec = lane_of(task)
                if spec is not None:
                    lanes.append((position, spec))
            if lanes:
                outcomes = run_lanes([spec for _, spec in lanes])
                for (position, _), lane in zip(lanes, outcomes):
                    if lane.fallback is None:
                        value = value_of(group[position], lane)
                        if value is not None:
                            values[position] = value
        for position, task in enumerate(group):
            if values[position] is _UNSET:
                values[position] = run_task(task)
        return values

    return run_batch


def run_tasks_batched(
    run_task: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    batch_size: int,
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Any = None,
    policy: Any = None,
    task_timeout: float | None = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> PartialResult:
    """``run_tasks_partial`` over groups of ``batch_size`` tasks.

    Results (and ``on_result`` callbacks) use the original flat task
    indices, so ledger checkpointing is oblivious to the grouping.
    Resilience knobs apply per *group*: a retried or timed-out unit of
    work is one whole batch, which recomputes deterministically.  A
    terminally failed group surfaces as one ``TaskError`` anchored at the
    group's first flat index, with every task of the group left as a
    ``None`` hole — fail-fast callers raise either way, exactly as the
    unbatched engine would on the first failing cell.
    """
    from repro.parallel.engine import run_tasks_partial

    tasks = list(tasks)
    size = resolve_batch_size(batch_size)
    if size is None:
        raise ValueError("run_tasks_batched needs an explicit batch_size")
    groups = [tasks[start : start + size] for start in range(0, len(tasks), size)]
    total = len(tasks)
    flat = PartialResult(results=[None] * total)

    def group_result(group_index: int, values: list) -> None:
        start = group_index * size
        for offset, value in enumerate(values):
            flat.results[start + offset] = value
            if on_result is not None:
                on_result(start + offset, value)

    group_progress = None
    if progress is not None:

        def group_progress(done: int, _groups: int) -> None:
            progress(min(done * size, total), total)

    partial = run_tasks_partial(
        make_batch_task(run_task),
        groups,
        workers=workers,
        progress=group_progress,
        metrics=metrics,
        policy=policy,
        task_timeout=task_timeout,
        on_result=group_result,
    )
    for error in partial.errors:
        flat.errors.append(dataclasses.replace(error, index=error.index * size))
    flat.retries = partial.retries
    flat.timeouts = partial.timeouts
    flat.shed = partial.shed
    flat.shed_indices = [
        group_index * size + offset
        for group_index in partial.shed_indices
        for offset in range(len(groups[group_index]))
    ]
    return flat


__all__ = [
    "BATCH_ENV",
    "LaneResult",
    "LaneSpec",
    "make_batch_task",
    "resolve_batch_size",
    "run_lanes",
    "run_tasks_batched",
]
