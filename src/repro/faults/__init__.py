"""Fault injection & resilience: probing the edges of the paper's model.

The paper's guarantees are proved *inside* a model — atomic registers,
crash = halt forever — and the rest of the repository verifies the protocol
within it.  This package deliberately steps outside:

- :mod:`repro.faults.plan` / :mod:`repro.faults.injector` — seeded,
  replayable register faults (stale reads, lost writes, value corruption)
  injected at the atomic-register substrate every construction bottoms out
  in;
- :mod:`repro.faults.watchdog` — online starvation / livelock monitors that
  turn would-be step-budget blowups into early, diagnosed, *degraded*
  outcomes;
- crash *recovery* lives in the runtime (:class:`~repro.runtime.scheduler.
  RecoveryPlan`, :meth:`Simulation.restart`): a crashed process may restart
  its program with local state lost but its shared cell intact;
- :mod:`repro.faults.campaign` — the mutation-testing campaign that flips
  each fault class on and proves the corresponding safety checker actually
  fires (imported explicitly; it depends on the consensus layer).

See ``docs/robustness.md`` for the fault taxonomy and which paper property
survives which fault class.
"""

from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.plan import FAULT_KINDS, FaultPlan, corrupt_value
from repro.faults.watchdog import Watchdog, WatchdogAlert

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "InjectionRecord",
    "Watchdog",
    "WatchdogAlert",
    "corrupt_value",
]
