"""Online safety monitors for the step loop.

A :class:`Watchdog` is handed to :meth:`Simulation.run` and observes the run
*while it happens*, diagnosing the two failure shapes that previously only
surfaced as an opaque ``StepBudgetExceeded`` long after the fact:

- **starvation** — a runnable process has not been scheduled for a whole
  window of global steps (an adversary, a buggy scheduler, or a scripted
  schedule that ran dry of a pid);
- **livelock** — processes keep taking steps but nothing *progresses*: the
  configured progress counters (round advances and decisions by default)
  are frozen and no process finishes or crashes, which is what scan
  starvation or a corrupted handshake bit looks like from the outside.

Alerts are recorded on the watchdog (and copied into the run's
:class:`SimulationOutcome`); kinds listed in ``halt_on`` additionally stop
the run early with a *degraded* outcome carrying the diagnosis, so a doomed
run costs a window instead of a full step budget.

The watchdog reads only public simulation state (step counts, process
states, metrics counter totals), so it works for any workload; livelock
detection is only as sharp as the progress counters it watches — with
metrics disabled it falls back to completion counts alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation

#: Counters whose movement counts as progress for consensus workloads.
DEFAULT_PROGRESS_COUNTERS = (
    "consensus.round_advances",
    "consensus.decisions",
    "consensus.coin_flips",
)


@dataclass(frozen=True)
class WatchdogAlert:
    """One detected anomaly."""

    step: int
    kind: str  # "starvation" | "livelock"
    detail: str

    def __str__(self) -> str:
        return f"[step {self.step}] {self.kind}: {self.detail}"


class Watchdog:
    """Starvation / no-progress monitor for :meth:`Simulation.run`.

    Args:
        starvation_window: global steps a runnable process may go
            unscheduled before a ``starvation`` alert fires (once per pid).
        progress_window: global steps the progress signal may stay frozen
            before a ``livelock`` alert fires (once per run).
        check_every: how often (in global steps) the monitor actually looks;
            keeps the per-step overhead to one modulo.
        progress_counters: metric counter names whose totals constitute the
            progress signal (plus finished/crashed process counts, always).
        halt_on: alert kinds that stop the run with a degraded outcome.
    """

    def __init__(
        self,
        starvation_window: int = 2_000,
        progress_window: int = 10_000,
        check_every: int = 64,
        progress_counters: Iterable[str] = DEFAULT_PROGRESS_COUNTERS,
        halt_on: Iterable[str] = (),
    ):
        self.starvation_window = starvation_window
        self.progress_window = progress_window
        self.check_every = max(1, check_every)
        self.progress_counters = tuple(progress_counters)
        self.halt_on = frozenset(halt_on)
        self.reset()

    def reset(self) -> None:
        self.alerts: list[WatchdogAlert] = []
        self._steps_seen: dict[int, int] = {}
        self._stuck_since: dict[int, int] = {}
        self._progress_signal: tuple | None = None
        self._progress_since = 0
        self._fired: set = set()

    # -- the monitor ---------------------------------------------------------

    def _signal(self, sim: "Simulation") -> tuple:
        finished = sum(1 for p in sim.processes.values() if not p.runnable)
        totals = tuple(
            sim.metrics.counter_total(name) for name in self.progress_counters
        )
        return (finished, *totals)

    def observe(self, sim: "Simulation") -> list[WatchdogAlert]:
        """Inspect the simulation; return any *new* alerts."""
        step = sim.step_count
        if step % self.check_every:
            return []
        new: list[WatchdogAlert] = []
        for pid, process in sim.processes.items():
            if not process.runnable:
                self._steps_seen.pop(pid, None)
                self._stuck_since.pop(pid, None)
                continue
            taken = process.steps_taken
            if self._steps_seen.get(pid) != taken:
                self._steps_seen[pid] = taken
                self._stuck_since[pid] = step
            elif (
                step - self._stuck_since[pid] >= self.starvation_window
                and ("starvation", pid) not in self._fired
            ):
                self._fired.add(("starvation", pid))
                new.append(
                    WatchdogAlert(
                        step,
                        "starvation",
                        f"process {pid} runnable but unscheduled for "
                        f"{step - self._stuck_since[pid]} steps "
                        f"(stuck at {taken} own steps)",
                    )
                )
        signal = self._signal(sim)
        if signal != self._progress_signal:
            self._progress_signal = signal
            self._progress_since = step
        elif (
            step - self._progress_since >= self.progress_window
            and "livelock" not in self._fired
        ):
            self._fired.add("livelock")
            counters = ", ".join(
                f"{name}={value}"
                for name, value in zip(self.progress_counters, signal[1:])
            )
            new.append(
                WatchdogAlert(
                    step,
                    "livelock",
                    f"no progress for {step - self._progress_since} steps "
                    f"({counters or 'no progress counters'}; "
                    f"{signal[0]}/{len(sim.processes)} processes done)",
                )
            )
        self.alerts.extend(new)
        return new
