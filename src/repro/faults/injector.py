"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector is owned by a :class:`~repro.runtime.simulation.Simulation`
(``sim.faults``) and consulted by every :class:`AtomicRegister` at the
moment an operation takes effect — the single substrate every register
family, arrow and scannable memory in the repository bottoms out in, so a
plan targeting ``"mem.V"`` perturbs the paper's protocol memory without the
protocol, the metrics layer or the E6 audit being rewired at all: audited
registers keep auditing (a corrupted value that blows the boundedness gauge
is *supposed* to be visible there), and every injection increments the
``faults.injected`` counter for its kind.

Determinism: each register gets its own random stream derived from the
plan's seed and the register's name, and a draw is consumed per eligible
operation in execution order — identical schedules replay identical faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.faults.plan import FAULT_KINDS, FaultPlan, corrupt_value
from repro.obs.metrics import MetricsRegistry, NULL_INSTRUMENT
from repro.runtime.rng import derive_rng


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired."""

    step: int
    pid: int
    register: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.step}] p{self.pid} {self.kind} on "
            f"{self.register}: {self.detail}"
        )


class FaultInjector:
    """Applies a :class:`FaultPlan` to register operations as they execute."""

    def __init__(self, plan: FaultPlan, metrics: MetricsRegistry | None = None):
        self.plan = plan
        self.records: list[InjectionRecord] = []
        self._rngs: dict[str, Any] = {}
        self._remaining = plan.max_injections
        if metrics is None:
            self._counters = {kind: NULL_INSTRUMENT for kind in FAULT_KINDS}
        else:
            self._counters = {
                kind: metrics.counter("faults.injected", kind=kind)
                for kind in FAULT_KINDS
            }

    @property
    def injected(self) -> int:
        return len(self.records)

    def injected_by_kind(self) -> dict[str, int]:
        counts = {kind: 0 for kind in FAULT_KINDS}
        for record in self.records:
            counts[record.kind] += 1
        return counts

    # -- internals -----------------------------------------------------------

    def _rng_for(self, register: str):
        rng = self._rngs.get(register)
        if rng is None:
            rng = self._rngs[register] = derive_rng(self.plan.seed, "faults", register)
        return rng

    def _fire(self, register: str, kind: str) -> bool:
        """Decide (consuming one draw) whether ``kind`` fires on this op."""
        if self._remaining is not None and self._remaining <= 0:
            return False
        rate = self.plan.rate_of(kind)
        if rate <= 0:
            return False
        if self._rng_for(register).random() >= rate:
            return False
        if self._remaining is not None:
            self._remaining -= 1
        return True

    def _record(
        self, step: int, pid: int, register: str, kind: str, detail: str
    ) -> None:
        self.records.append(InjectionRecord(step, pid, register, kind, detail))
        self._counters[kind].inc()

    # -- hooks called by the register layer ----------------------------------

    def on_read(
        self, step: int, pid: int, register: str, current: Any, previous: Any
    ) -> Any:
        """Return the value the read should report (possibly stale)."""
        if not self.plan.targets_register(register):
            return current
        # A stale read of a never-written register would be a no-op; skip
        # the draw so the injection budget is only spent on visible faults.
        if previous != current and self._fire(register, "stale_read"):
            self._record(
                step, pid, register, "stale_read",
                f"returned {previous!r} instead of {current!r}",
            )
            return previous
        return current

    def on_write(
        self, step: int, pid: int, register: str, value: Any
    ) -> tuple[bool, Any]:
        """Return ``(lost, value_to_store)`` for a write of ``value``."""
        if not self.plan.targets_register(register):
            return False, value
        if self._fire(register, "lost_write"):
            self._record(step, pid, register, "lost_write", f"dropped {value!r}")
            return True, value
        if self._fire(register, "corrupt_write"):
            mutated = corrupt_value(value, self._rng_for(register))
            self._record(
                step, pid, register, "corrupt_write",
                f"stored {mutated!r} instead of {value!r}",
            )
            return False, mutated
        return False, value
