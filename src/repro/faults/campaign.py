"""Mutation testing of the trace checkers via fault injection.

A checker that never fires is indistinguishable from a checker that works.
This module turns the fault injectors on — one fault class at a time, on
deterministic scenarios — and asserts that the corresponding checker
*reports a violation*; matching control cells (faults off) assert that the
checkers stay clean.  A fault class no checker detects is a **hole** in the
verification net and fails the campaign.

Three layers are exercised:

- **register** — a writer/reader pair on one atomic register, judged by the
  Wing–Gong linearizability checker.  Every fault class is *guaranteed*
  detectable here: reads and writes strictly alternate in real time, so any
  stale, lost or corrupted value contradicts atomicity.
- **snapshot** — write/scan programs on an ``ArrowScannableMemory`` with
  faults on its ``V`` registers, judged by the P1–P3 ghost-wseq checkers.
  Stale reads and lost writes surface as P1 regularity violations; value
  corruption is only visible to the ghost checkers when the corruption hits
  the wseq field, so that cell is observational (``expected=False``).
- **consensus** — full ADS runs with faults on the scannable memory, judged
  by decision validation plus P1–P3 plus the degraded-outcome flag.  These
  cells are observational: the handshake scan *masks* many register faults
  by design (a stale collect just forces another round), and that masking
  is itself a result worth recording (see ``docs/robustness.md``).

The campaign is fully deterministic for a given seed, so it runs in CI
(the ``chaos-smoke`` job) and via ``repro chaos``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

from repro.consensus.ads import AdsConsensus
from repro.consensus.validation import validate_run
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.parallel import ParallelExecutionError, run_tasks_partial
from repro.registers.atomic import AtomicRegister
from repro.registers.linearizability import HistoryOp, check_register_history
from repro.runtime.scheduler import RoundRobinScheduler
from repro.runtime.simulation import Simulation
from repro.snapshot.arrows import ArrowScannableMemory
from repro.snapshot.properties import check_all_properties


@dataclass(frozen=True)
class CampaignCell:
    """One (fault class, layer) mutation-test cell."""

    fault: str  # a FAULT_KINDS entry, or "none" for a control cell
    layer: str  # "register" | "snapshot" | "consensus"
    checker: str
    detected: bool
    expected: bool  # detection is *required* (vs. merely observed)
    injections: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Control cells must stay clean; expected cells must detect;
        observational cells are informative either way."""
        if self.fault == "none":
            return not self.detected
        if self.expected:
            return self.detected
        return True


@dataclass
class CampaignReport:
    """Everything one mutation-test campaign produced."""

    seed: int
    cells: list[CampaignCell] = field(default_factory=list)
    #: Cells served from the ledger instead of recomputed (resume runs).
    #: Runtime accounting only — deliberately kept out of :meth:`to_json`
    #: so a resumed campaign's report is byte-identical to an undisturbed
    #: one.
    cache_hits: int = 0
    #: Cells lost to terminal task failures under a continue-and-report
    #: policy (stringified :class:`~repro.parallel.TaskError`\s).
    task_errors: list[str] = field(default_factory=list)

    def detections_by_kind(self) -> dict[str, int]:
        counts = {kind: 0 for kind in FAULT_KINDS}
        for cell in self.cells:
            if cell.fault in counts and cell.detected:
                counts[cell.fault] += 1
        return counts

    @property
    def holes(self) -> list[str]:
        """Fault classes *no* checker detected anywhere — verification gaps."""
        counts = self.detections_by_kind()
        return [kind for kind in FAULT_KINDS if counts[kind] == 0]

    @property
    def ok(self) -> bool:
        return (
            not self.holes
            and not self.task_errors
            and all(cell.ok for cell in self.cells)
        )

    def to_rows(self) -> list[dict]:
        return [
            {
                "fault": c.fault,
                "layer": c.layer,
                "checker": c.checker,
                "injections": c.injections,
                "detected": c.detected,
                "expected": c.expected,
                "ok": c.ok,
                "detail": c.detail,
            }
            for c in self.cells
        ]

    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "seed": self.seed,
            "ok": self.ok,
            "holes": self.holes,
            "detections_by_kind": self.detections_by_kind(),
            "cells": self.to_rows(),
        }
        if self.task_errors:
            # Present only when cells were terminally lost, so a disturbed-
            # but-complete campaign serialises byte-identically to an
            # undisturbed one.
            payload["task_errors"] = self.task_errors
        return json.dumps(payload, indent=indent, sort_keys=True)


# -- register layer ----------------------------------------------------------


def _register_cell(fault: str | None, seed: int) -> CampaignCell:
    """Writer writes 1,2,3; reader reads three times, strictly alternating.

    Every operation is a single atomic step, so the history's real-time
    order is total and each read must return exactly the latest write's
    value — any injected fault breaks linearizability.
    """
    plan = FaultPlan.single(fault, targets=("r",), seed=seed) if fault else None
    sim = Simulation(
        2,
        scheduler=RoundRobinScheduler(),
        seed=seed,
        record_events=True,
        faults=plan,
    )
    reg = AtomicRegister(sim, "r", initial=0, writers=[0])

    def factory(pid: int):
        if pid == 0:
            def writer(ctx):
                for v in (1, 2, 3):
                    yield from reg.write(ctx, v)
            return writer

        def reader(ctx):
            for _ in range(3):
                yield from reg.read(ctx)
        return reader

    sim.spawn_all(factory)
    sim.run(100)
    ops = [
        HistoryOp(
            op_id=idx,
            pid=e.pid,
            kind=e.kind,
            value=e.value,
            invoke=e.step,
            response=e.step,
        )
        for idx, e in enumerate(sim.trace.events)
        if e.target == "r" and e.kind in ("read", "write")
    ]
    witness = check_register_history(ops, initial=0)
    injections = sim.faults.injected if sim.faults is not None else 0
    return CampaignCell(
        fault=fault or "none",
        layer="register",
        checker="linearizability",
        detected=witness is None,
        expected=fault is not None,
        injections=injections,
        detail=f"{len(ops)} ops",
    )


# -- snapshot layer ----------------------------------------------------------


def _snapshot_cell(fault: str | None, seed: int) -> CampaignCell:
    """Two processes write/scan an arrow memory with faults on its V cells."""
    plan = (
        FaultPlan.single(fault, targets=("mem.V",), seed=seed) if fault else None
    )
    sim = Simulation(
        2,
        scheduler=RoundRobinScheduler(),
        seed=seed,
        record_events=True,
        record_spans=True,
        faults=plan,
    )
    mem = ArrowScannableMemory(sim, "mem", 2, initial=0, ghost=True)

    def factory(pid: int):
        def body(ctx):
            for round_no in (1, 2):
                yield from mem.write(ctx, (pid, round_no))
                yield from mem.scan(ctx)
        return body

    sim.spawn_all(factory)
    sim.run(10_000)
    violations = check_all_properties(sim.trace, "mem", 2)
    injections = sim.faults.injected if sim.faults is not None else 0
    # Corruption is only ghost-visible when it hits the wseq field of the
    # (value, toggle, wseq) cell, so that cell is observational.
    expected = fault in ("stale_read", "lost_write")
    return CampaignCell(
        fault=fault or "none",
        layer="snapshot",
        checker="P1-P3",
        detected=bool(violations),
        expected=expected,
        injections=injections,
        detail="; ".join(
            f"{v.property_name}: {v.description}" for v in violations[:2]
        ),
    )


# -- consensus layer ---------------------------------------------------------


def _consensus_cell(fault: str, seed: int, max_steps: int) -> CampaignCell:
    """A full ADS run with a low-rate fault on the scannable memory.

    Observational: the handshake scan masks most register faults (a stale
    or lost collect forces another round instead of a wrong view), so a
    clean outcome here is a *robustness* result, not a checker hole.
    Detection means any of: unsafe decisions, P1–P3 violation, degraded
    outcome (budget blown), or the protocol crashing on a corrupted cell.
    """
    plan = FaultPlan(
        seed=seed,
        **{f"{fault}_rate": 0.02},
        targets=("mem.V",),
        max_injections=8,
    )
    proto = AdsConsensus(ghost_wseqs=True)
    try:
        run = proto.run(
            [0, 1, 1],
            seed=seed,
            fault_plan=plan,
            record_spans=True,
            max_steps=max_steps,
            raise_on_budget=False,
            keep_simulation=True,
        )
    except Exception as exc:  # corrupted state can crash protocol logic
        return CampaignCell(
            fault=fault,
            layer="consensus",
            checker="validation+P1-P3",
            detected=True,
            expected=False,
            detail=f"protocol crashed: {type(exc).__name__}: {exc}",
        )
    report = validate_run(run)
    violations = check_all_properties(run.simulation.trace, "mem", run.n)
    injections = run.simulation.faults.injected
    detected = (not report.ok) or bool(violations) or run.outcome.degraded
    parts = []
    if not report.ok:
        parts.append("; ".join(report.problems))
    if violations:
        parts.append(f"{len(violations)} P1-P3 violations")
    if run.outcome.degraded:
        parts.append(f"degraded: {run.outcome.failure_reason}")
    if not parts:
        parts.append("masked by the handshake scan")
    return CampaignCell(
        fault=fault,
        layer="consensus",
        checker="validation+P1-P3",
        detected=detected,
        expected=False,
        injections=injections,
        detail=" | ".join(parts),
    )


def _campaign_cell(
    spec: tuple[str, str | None], seed: int, consensus_max_steps: int
) -> CampaignCell:
    """Dispatch one (layer, fault) cell; self-contained and picklable."""
    layer, fault = spec
    if layer == "register":
        return _register_cell(fault, seed)
    if layer == "snapshot":
        return _snapshot_cell(fault, seed)
    assert layer == "consensus" and fault is not None
    return _consensus_cell(fault, seed, consensus_max_steps)


def run_mutation_campaign(
    seed: int = 0,
    consensus_max_steps: int = 200_000,
    workers: int | None = None,
    ledger: "Any | None" = None,
    experiment: str = "campaign",
    policy: "Any | None" = None,
    task_timeout: float | None = None,
    metrics: Any = None,
    task_wrapper: Any = None,
    batch_size: int | None = None,
) -> CampaignReport:
    """Run every mutation-test cell; deterministic for a given seed.

    Each cell seeds its own simulation, so with ``workers`` > 1 the cells
    run concurrently and the report (cells in the canonical order) is
    identical to the serial campaign.

    With a ``ledger`` (a :class:`~repro.obs.ledger.RunLedger`), every
    cell is content-addressed by (seed, cell spec, code version): known
    cells are cache hits (served from their records, counted in
    ``report.cache_hits``), and fresh cells checkpoint to the ledger
    *incrementally* in canonical order as they complete — the ledger
    bytes stay identical at any worker count and an interrupted campaign
    resumes by recomputing only the missing cells.

    ``policy``/``task_timeout`` flow to
    :func:`~repro.parallel.run_tasks_partial` (retry a crashed cell from
    its seed; continue-and-report turns lost cells into
    ``report.task_errors``); ``task_wrapper`` decorates the cell function
    before dispatch (chaos injection hooks like
    :class:`~repro.resilience.checkpoint.CrashOnce`).
    """
    specs: list[tuple[str, str | None]] = [("register", None), ("snapshot", None)]
    for kind in FAULT_KINDS:
        specs.extend([("register", kind), ("snapshot", kind), ("consensus", kind)])
    report = CampaignReport(seed=seed)

    def run_spec(spec: tuple[str, str | None]) -> CampaignCell:
        return _campaign_cell(spec, seed, consensus_max_steps)

    if task_wrapper is not None:
        run_spec = task_wrapper(run_spec)
    continue_mode = policy is not None and policy.mode == "continue"

    # Campaign cells build fault-injected simulations, so there is no
    # fused fast path — batching groups cells per pool task (identical
    # report, fewer fork/IPC round-trips).
    from repro.batch import resolve_batch_size

    batch_size = resolve_batch_size(batch_size)

    def dispatch(tasks, on_result=None):
        if batch_size is not None:
            from repro.batch import run_tasks_batched

            return run_tasks_batched(
                run_spec,
                tasks,
                batch_size=batch_size,
                workers=workers,
                policy=policy,
                task_timeout=task_timeout,
                metrics=metrics,
                on_result=on_result,
            )
        return run_tasks_partial(
            run_spec,
            tasks,
            workers=workers,
            policy=policy,
            task_timeout=task_timeout,
            metrics=metrics,
            on_result=on_result,
        )

    if ledger is None:
        partial = dispatch(specs)
        if partial.errors and not continue_mode:
            raise ParallelExecutionError(partial.errors)
        report.cells = [cell for cell in partial.results if cell is not None]
        report.task_errors = [str(error) for error in partial.errors]
        return report

    from repro.obs.ledger import compute_fingerprint, make_record
    from repro.resilience.checkpoint import LedgerCheckpointer

    configs = [
        {
            "experiment": experiment,
            "layer": layer,
            "fault": fault or "none",
            "consensus_max_steps": consensus_max_steps,
        }
        for layer, fault in specs
    ]
    fingerprints = [compute_fingerprint(seed, config) for config in configs]
    cells: list[CampaignCell | None] = [None] * len(specs)
    pending: list[int] = []
    checkpointer = LedgerCheckpointer(ledger)
    for index, fingerprint in enumerate(fingerprints):
        record = ledger.cached(fingerprint)
        if record is not None and record.kind == "campaign":
            cells[index] = CampaignCell(**record.outcome)
            checkpointer.skip(index)
            report.cache_hits += 1
        else:
            pending.append(index)

    def checkpoint(position: int, cell: CampaignCell) -> None:
        index = pending[position]
        cells[index] = cell
        checkpointer.offer(
            index,
            make_record(
                kind="campaign",
                experiment=experiment,
                seed=seed,
                config=configs[index],
                outcome=dataclasses.asdict(cell),
            ),
        )

    partial = dispatch([specs[index] for index in pending], on_result=checkpoint)
    checkpointer.close()
    if partial.errors and not continue_mode:
        raise ParallelExecutionError(partial.errors)
    report.cells = [cell for cell in cells if cell is not None]
    report.task_errors = [str(error) for error in partial.errors]
    return report
