"""Replayable fault plans.

A :class:`FaultPlan` describes *which* model violations to inject into a run
and *how often*, without naming concrete operations: the decision for each
individual register operation is drawn from a per-register random stream
derived from the plan's seed, so two runs with identical schedules and
identical plans inject byte-identical faults — a fault campaign failure can
always be replayed from ``(protocol seed, fault plan)`` alone.

Three fault classes, each stepping outside the paper's model in a distinct
direction:

- ``stale_read`` — a read returns the register's *previous* value instead of
  the current one.  This is (an adversarially timed instance of) regular-
  register semantics; Hadzilacos–Hu–Toueg show randomized consensus can
  survive this weakening, and the handshake scan construction indeed masks
  most stale reads (see ``docs/robustness.md``).
- ``lost_write`` — a write takes its scheduling step, is observed by the
  writer as complete, but never lands in the cell.  No register model
  permits this; every checker layer should be able to catch it.
- ``corrupt_write`` — the stored value is mutated (:func:`corrupt_value`)
  before landing.  Models memory corruption / a buggy encoder; may also
  break the paper's boundedness audit, which is itself a detector.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any

#: The three injectable fault kinds, in canonical order.
FAULT_KINDS = ("stale_read", "lost_write", "corrupt_write")


def corrupt_value(value: Any, rng: random.Random) -> Any:
    """Deterministically mutate ``value`` into a different value.

    Recurses into tuples, lists and dataclasses (one element/field is
    corrupted, chosen by ``rng``), so corrupting a protocol cell perturbs a
    single field rather than replacing the whole structure — the hardest
    kind of corruption for a coarse checker to notice.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + (1 if rng.random() < 0.5 else -1)
    if isinstance(value, float):
        return -value - 1.0
    if value is None:
        return 0
    if isinstance(value, str):
        return value + "?"
    if isinstance(value, tuple) and value:
        i = rng.randrange(len(value))
        return value[:i] + (corrupt_value(value[i], rng),) + value[i + 1 :]
    if isinstance(value, list) and value:
        i = rng.randrange(len(value))
        copy = list(value)
        copy[i] = corrupt_value(copy[i], rng)
        return copy
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = rng.choice([f.name for f in dataclasses.fields(value)])
        return dataclasses.replace(
            value, **{name: corrupt_value(getattr(value, name), rng)}
        )
    # Empty containers / unknown objects: return a distinguishable marker.
    return "<corrupted>"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable register-fault specification.

    Attributes:
        seed: master seed of the per-register injection streams.
        stale_read_rate: probability a targeted read returns the previous
            value.
        lost_write_rate: probability a targeted write is silently dropped.
        corrupt_write_rate: probability a targeted write's stored value is
            mutated.
        targets: register-name prefixes the plan applies to (``("mem.V",)``
            hits every ``mem.V[i]`` cell); empty means *all* registers.
        max_injections: total injection budget across all kinds, or ``None``
            for unlimited.
    """

    seed: int = 0
    stale_read_rate: float = 0.0
    lost_write_rate: float = 0.0
    corrupt_write_rate: float = 0.0
    targets: tuple[str, ...] = ()
    max_injections: int | None = None

    @classmethod
    def single(
        cls,
        kind: str,
        rate: float = 1.0,
        targets: tuple[str, ...] = (),
        max_injections: int | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """A plan injecting only one fault kind (mutation-testing cells)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        return cls(
            seed=seed,
            targets=tuple(targets),
            max_injections=max_injections,
            **{f"{kind}_rate": rate},
        )

    @classmethod
    def random(
        cls, rng: random.Random, targets: tuple[str, ...] = (), max_rate: float = 0.05
    ) -> "FaultPlan":
        """A random low-rate plan (fuzz-grid fault cells)."""
        kind = rng.choice(FAULT_KINDS)
        return cls.single(
            kind,
            rate=rng.uniform(0.005, max_rate),
            targets=targets,
            seed=rng.randrange(2**31),
        )

    def rate_of(self, kind: str) -> float:
        return getattr(self, f"{kind}_rate")

    def active_kinds(self) -> tuple[str, ...]:
        return tuple(k for k in FAULT_KINDS if self.rate_of(k) > 0)

    def enabled(self) -> bool:
        return bool(self.active_kinds())

    def targets_register(self, name: str) -> bool:
        """Whether this plan applies to register ``name`` (prefix match)."""
        return not self.targets or any(name.startswith(t) for t in self.targets)

    def describe(self) -> str:
        rates = ", ".join(f"{k}={self.rate_of(k)}" for k in self.active_kinds())
        where = ",".join(self.targets) if self.targets else "*"
        budget = "" if self.max_injections is None else f", max={self.max_injections}"
        return (
            f"FaultPlan(seed={self.seed}, {rates or 'inactive'}, "
            f"targets={where}{budget})"
        )
