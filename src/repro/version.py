"""Code-version provenance: package version, git SHA, ledger schema.

Cross-run telemetry is only comparable when every record says *which
code* produced it.  This module is the single source of that identity:

- :func:`package_version` — the installed ``repro`` distribution version
  (falling back to the version pinned in ``pyproject.toml`` when the
  package runs straight from a source tree);
- :func:`git_sha` — the current commit, when the source tree is a git
  checkout and ``git`` is available (empty string otherwise — never an
  error: provenance is best-effort by design);
- :data:`LEDGER_SCHEMA` — the on-disk schema version of the run ledger
  (:mod:`repro.obs.ledger`), bumped only on incompatible record changes;
- :func:`code_version` — the composite string folded into every ledger
  fingerprint, so records from different code generations never collide
  (and never cache-hit each other);
- :func:`provenance` — the JSON-able stamp carried by every ledger
  record and every ``BENCH_*.json`` benchmark artifact.

``REPRO_CODE_VERSION`` overrides :func:`code_version` wholesale — used by
tests that need stable fingerprints and by deployments that version code
by something other than git (container digests, release tags).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
from functools import lru_cache

#: On-disk schema version of run-ledger records.  Bump on incompatible
#: changes to the record layout; readers refuse newer schemas loudly.
LEDGER_SCHEMA = 1

#: Environment override for :func:`code_version` (tests, release pinning).
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

#: Fallback when package metadata is unavailable (source-tree runs).
_FALLBACK_VERSION = "1.0.0"


def package_version() -> str:
    """The installed ``repro`` version, or the source-tree fallback."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return _FALLBACK_VERSION


@lru_cache(maxsize=1)
def git_sha() -> str:
    """The current commit SHA, or ``""`` when not in a usable git tree.

    Cached per process: provenance is stamped on every ledger append and
    must not pay a subprocess per record.
    """
    root = pathlib.Path(__file__).resolve().parents[2]
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if proc.returncode != 0:
        return ""
    sha = proc.stdout.strip()
    return sha if len(sha) == 40 and all(c in "0123456789abcdef" for c in sha) else ""


def code_version() -> str:
    """The composite code identity folded into ledger fingerprints.

    ``<package>+<short git sha or "nogit">/schema<N>``, unless
    ``REPRO_CODE_VERSION`` pins it explicitly.
    """
    override = os.environ.get(CODE_VERSION_ENV, "").strip()
    if override:
        return override
    sha = git_sha()
    return (
        f"{package_version()}+{sha[:12] if sha else 'nogit'}"
        f"/schema{LEDGER_SCHEMA}"
    )


def provenance() -> dict[str, object]:
    """The JSON-able provenance stamp for artifacts and ledger records."""
    return {
        "package": package_version(),
        "git_sha": git_sha(),
        "ledger_schema": LEDGER_SCHEMA,
        "code_version": code_version(),
    }
