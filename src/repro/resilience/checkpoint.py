"""Incremental campaign checkpointing and crash injection.

Before this layer, every ledger-recorded entry point appended its fresh
records only *after* the whole campaign returned — an interrupt at cell
199/200 lost all 199.  :class:`LedgerCheckpointer` turns the ledger into
a live checkpoint: completed cells are buffered as they arrive (any
completion order, any worker count) and flushed to the ledger strictly
in submission order, so

- the ledger's bytes are identical whether the campaign ran serially,
  on eight workers, or through three interrupt/resume cycles, and
- an interrupt always leaves a valid submission-order *prefix* on disk
  (plus at most one torn trailing line, which the ledger reader already
  tolerates) — the resumed run recomputes only the missing suffix and
  whatever cells the cache could not serve.

:class:`CrashOnce` is the matching chaos tool: a task wrapper that
SIGKILLs its own worker process exactly once per marker file, used by
the crash-mid-campaign tests and ``repro chaos --inject-worker-crash``
to prove the retry path end to end.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.ledger import LedgerRecord, RunLedger


class LedgerCheckpointer:
    """Flush completed campaign cells to a ledger in submission order.

    Feed it ``(position, record)`` pairs in whatever order the pool
    completes them; it appends to the ledger only the contiguous prefix
    of positions seen so far.  Positions served from cache (no fresh
    record to write) are marked with :meth:`skip` so they do not block
    the prefix.
    """

    def __init__(self, ledger: "RunLedger"):
        self._ledger = ledger
        self._pending: dict[int, "LedgerRecord"] = {}
        self._skipped: set[int] = set()
        self._next = 0
        self.flushed = 0

    def skip(self, position: int) -> None:
        """Mark ``position`` as cache-served: nothing to write for it."""
        self._skipped.add(position)
        self._flush()

    def offer(self, position: int, record: "LedgerRecord") -> None:
        """Buffer a freshly computed cell's record; flush what's ready."""
        self._pending[position] = record
        self._flush()

    def _flush(self) -> None:
        while True:
            if self._next in self._skipped:
                self._skipped.discard(self._next)
                self._next += 1
                continue
            record = self._pending.pop(self._next, None)
            if record is None:
                return
            self._ledger.append(record)
            self.flushed += 1
            self._next += 1

    def close(self) -> None:
        """Assert nothing completed is still buffered (a position hole
        from a terminally failed cell legitimately strands later cells —
        those stay buffered and are recomputed from cache on resume)."""
        self._pending.clear()
        self._skipped.clear()


class CrashOnce:
    """Task wrapper that SIGKILLs its worker once, then behaves normally.

    The first invocation (across all workers — guarded by an exclusively
    created marker file) kills the current process before running the
    task, simulating an OOM-killed or segfaulted worker.  Every later
    invocation, including the retry of the murdered task, delegates to
    the wrapped function — so a campaign run under ``FailurePolicy.retry``
    completes with output bit-identical to an undisturbed run.

    Instances hold only a function and a path, so they survive the
    fork-based pool without pickling concerns.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        marker_path: str | os.PathLike[str],
        at_index: int | None = None,
    ):
        self._fn = fn
        self._marker = Path(marker_path)
        self._at_index = at_index

    def __call__(self, task: Any) -> Any:
        if self._should_crash(task):
            try:
                # O_EXCL makes exactly one worker win the race to die.
                fd = os.open(self._marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return self._fn(task)

    def _should_crash(self, task: Any) -> bool:
        if self._marker.exists():
            return False
        if self._at_index is None:
            return True
        index = getattr(task, "index", None)
        return index == self._at_index
