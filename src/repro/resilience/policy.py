"""Failure policies and partial results for campaign execution.

A campaign is a list of independent seeded tasks; the only interesting
question when one fails is *what the harness does next*.  A
:class:`FailurePolicy` answers it:

- ``FailurePolicy.fail_fast()`` — the classic all-or-nothing: every task
  runs, any failure raises
  :class:`~repro.parallel.ParallelExecutionError` at the end (the
  behavior every entry point had before this layer existed);
- ``FailurePolicy.retry(max_attempts, ...)`` — transient failures
  (a worker SIGKILLed by the OOM killer, a flaky machine, an injected
  chaos crash) are re-dispatched up to ``max_attempts`` times with
  seeded exponential backoff.  Because every task derives all of its
  randomness from its own seed, a retried task recomputes *exactly* the
  result the undisturbed run would have produced — retries change
  wall-clock, never output bytes;
- ``FailurePolicy.continue_and_report(...)`` — failures (after any
  retries) are collected instead of raised, and the caller receives a
  :class:`PartialResult` carrying the survivors and the full error
  accounting.  One crashed cell costs one cell, not the campaign.

Backoff delays derive from ``(seed, task index, attempt)`` through the
same :func:`repro.runtime.rng.derive_rng` discipline as every other
random stream in the repository, so two runs of the same campaign retry
on the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.runtime.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.engine import TaskError

#: The three failure-handling modes, in escalating tolerance.
POLICY_MODES = ("fail_fast", "retry", "continue")


@dataclass(frozen=True)
class RetryBackoff:
    """Seeded exponential backoff: ``base * factor**(attempt-1)``, jittered.

    The jittered fraction of each delay is drawn from a stream derived
    from ``(seed, task index, attempt)``, so backoff schedules are
    reproducible — chaos runs replay byte-identically, waits included.
    ``base=0`` disables sleeping entirely (the test configuration).
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, index: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``index``'s ``attempt``."""
        if self.base <= 0:
            return 0.0
        raw = min(self.base * self.factor ** max(attempt - 1, 0), self.max_delay)
        if self.jitter <= 0:
            return raw
        rng = derive_rng(self.seed, "backoff", index, attempt)
        return raw * (1.0 - self.jitter + self.jitter * rng.random())


@dataclass(frozen=True)
class FailurePolicy:
    """What :func:`repro.parallel.run_tasks` does when a task fails.

    Args:
        mode: one of :data:`POLICY_MODES`.  ``fail_fast`` raises after
            all tasks ran (never retries); ``retry`` retries transient
            failures and raises only when a task exhausts its attempts;
            ``continue`` never raises — terminal failures land in the
            :class:`PartialResult`.
        max_attempts: total attempts per task (1 = no retries).
        backoff: the seeded backoff schedule between attempts.
        retry_timeouts: whether a task killed for exceeding its deadline
            is eligible for retry (a genuinely hung simulation would hang
            again, but a worker starved by host load would not — default
            on, bounded by ``max_attempts`` either way).
    """

    mode: str = "fail_fast"
    max_attempts: int = 1
    backoff: RetryBackoff = field(default_factory=RetryBackoff)
    retry_timeouts: bool = True

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"unknown failure-policy mode {self.mode!r}; "
                f"one of {POLICY_MODES}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    # -- constructors (the three policies by name) ---------------------------

    @classmethod
    def fail_fast(cls) -> "FailurePolicy":
        """All-or-nothing: any failure raises after every task ran."""
        return cls()

    @classmethod
    def retry(
        cls,
        max_attempts: int = 3,
        backoff: RetryBackoff | None = None,
        seed: int = 0,
        retry_timeouts: bool = True,
    ) -> "FailurePolicy":
        """Retry transient failures; raise only on attempt exhaustion."""
        return cls(
            mode="retry",
            max_attempts=max_attempts,
            backoff=backoff if backoff is not None else RetryBackoff(seed=seed),
            retry_timeouts=retry_timeouts,
        )

    @classmethod
    def continue_and_report(
        cls,
        max_attempts: int = 1,
        backoff: RetryBackoff | None = None,
        seed: int = 0,
    ) -> "FailurePolicy":
        """Collect failures in the :class:`PartialResult`; never raise."""
        return cls(
            mode="continue",
            max_attempts=max_attempts,
            backoff=backoff if backoff is not None else RetryBackoff(seed=seed),
        )

    @property
    def retries_enabled(self) -> bool:
        return self.mode != "fail_fast" and self.max_attempts > 1

    def should_retry(self, attempt: int, timed_out: bool) -> bool:
        """Is one more attempt allowed after a failed ``attempt``?"""
        if not self.retries_enabled or attempt >= self.max_attempts:
            return False
        return self.retry_timeouts or not timed_out


@dataclass
class PartialResult:
    """Everything a resilient campaign execution produced.

    ``results`` is in submission order with ``None`` holes where a task
    terminally failed or was shed — the successes merge exactly as the
    plain path would merge them, so a retried-but-complete campaign is
    bit-identical to an undisturbed one.
    """

    results: list[Any | None]
    errors: list["TaskError"] = field(default_factory=list)
    retries: int = 0  # re-dispatches performed (attempts beyond the first)
    timeouts: int = 0  # deadline kills (each occurrence, retried or not)
    shed: int = 0  # tasks refused by admission control
    shed_indices: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and not self.shed

    @property
    def completed(self) -> int:
        return sum(1 for value in self.results if value is not None)

    @property
    def failed_indices(self) -> list[int]:
        return sorted(error.index for error in self.errors)

    def accounting(self) -> dict[str, int]:
        """The resilience counters, in metrics-key vocabulary."""
        return {
            "tasks": len(self.results),
            "completed": self.completed,
            "failed": len(self.errors),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "shed": self.shed,
        }

    def summary(self) -> str:
        if self.ok:
            status = "OK"
        elif self.errors:
            status = f"{len(self.errors)} FAILED"
        else:
            status = "PARTIAL"
        extras = ""
        if self.retries:
            extras += f", {self.retries} retried"
        if self.timeouts:
            extras += f", {self.timeouts} timed out"
        if self.shed:
            extras += f", {self.shed} shed"
        return (
            f"{self.completed}/{len(self.results)} tasks completed"
            f"{extras}: {status}"
        )
