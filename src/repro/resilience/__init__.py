"""Resilience layer for campaign-scale execution.

The paper's subject is computing that survives failure — wait-free
consensus where any ``n-1`` processes may crash — and this package makes
the *harness* tolerate the same fault classes it simulates.  Three
mechanisms, all composing with :func:`repro.parallel.run_tasks`:

- **failure policies** (:mod:`repro.resilience.policy`) — what happens
  when a campaign task raises, its worker dies, or it exceeds its
  wall-clock deadline: fail fast (the classic all-or-nothing), retry
  with seeded exponential backoff (deterministic: a retried task re-runs
  from its original seed, so the merged output is bit-identical to an
  undisturbed run), or continue-and-report (a structured
  :class:`~repro.resilience.policy.PartialResult` carrying the
  survivors, every :class:`~repro.parallel.TaskError`, and the retry /
  timeout / shed accounting);
- **budget-based admission control** (:mod:`repro.resilience.budget`) —
  per-campaign step / wall-clock / task budgets with priority classes
  and graceful shedding under load, extending the ``raise_on_budget=
  False`` degraded-outcome discipline from the simulation layer to the
  campaign layer;
- **checkpoint/resume** (:mod:`repro.resilience.checkpoint`) — completed
  campaign cells persist *incrementally* to the run ledger in submission
  order, so an interrupted campaign resumes by recomputing only the
  fingerprints the ledger does not already hold (``--resume``).

Policy decisions are observable: the engine records ``resilience.retries``,
``resilience.timeouts`` and ``resilience.shed`` counters into any metrics
registry handed to it, and the dashboard renders them as a "Resilience"
section (see ``docs/robustness.md``).
"""

from repro.resilience.budget import (
    AdmissionController,
    AdmissionDecision,
    CampaignBudget,
    Priority,
)
from repro.resilience.checkpoint import CrashOnce, LedgerCheckpointer
from repro.resilience.policy import FailurePolicy, PartialResult, RetryBackoff

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CampaignBudget",
    "CrashOnce",
    "FailurePolicy",
    "LedgerCheckpointer",
    "PartialResult",
    "Priority",
    "RetryBackoff",
]
