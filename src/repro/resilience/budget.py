"""Budget-based admission control with priority classes.

Heavy traffic needs a bouncer: a campaign that would blow its step,
wall-clock or task budget should degrade *gracefully* — shedding the
least important work first and reporting what it shed — rather than
either running unbounded or aborting.  This extends the simulation
layer's ``raise_on_budget=False`` discipline (a blown per-run step
budget becomes a degraded outcome, not an exception) up to the campaign
layer: a blown campaign budget becomes shed tasks, not a dead campaign.

An :class:`AdmissionController` is consulted by the execution engine
before each task is dispatched (:func:`repro.parallel.run_tasks` with
``admission=``) and charged after each result.  Decisions:

- **pressure >= 1** (any budget dimension exhausted): everything below
  :attr:`Priority.CRITICAL` is shed;
- **pressure >= soft_fraction** (a dimension nearly exhausted):
  :attr:`Priority.BEST_EFFORT` work is shed, making room for the normal
  and critical classes to finish inside the budget;
- otherwise: admit.

Step budgets are charged from task results (``steps_of``), so serial
admission decisions are deterministic for a fixed task list.  Wall-clock
budgets are host measurements by nature; campaigns that need
bit-identical outputs should gate on steps or tasks, not seconds
(documented in ``docs/robustness.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable


class Priority(IntEnum):
    """Priority classes, lowest value = most important (shed last)."""

    CRITICAL = 0
    NORMAL = 1
    BEST_EFFORT = 2


@dataclass(frozen=True)
class CampaignBudget:
    """Per-campaign resource ceilings; ``None`` leaves a dimension open.

    ``max_steps`` counts simulation steps charged from completed results,
    ``max_wall_seconds`` counts wall-clock since the first admission
    decision, ``max_tasks`` counts admitted tasks.  ``soft_fraction`` is
    the load level at which best-effort work starts shedding.
    """

    max_steps: int | None = None
    max_wall_seconds: float | None = None
    max_tasks: int | None = None
    soft_fraction: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError(
                f"soft_fraction must be in (0, 1], got {self.soft_fraction}"
            )

    @property
    def unlimited(self) -> bool:
        return (
            self.max_steps is None
            and self.max_wall_seconds is None
            and self.max_tasks is None
        )


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit-or-shed verdict, with the reason spelled out."""

    admitted: bool
    priority: Priority
    pressure: float
    reason: str = ""


class AdmissionController:
    """Stateful admission control for one campaign.

    Args:
        budget: the campaign's ceilings.
        priority_of: ``task -> Priority`` (default: everything NORMAL).
            Tasks may also carry their own ``priority`` attribute.
        steps_of: ``result -> int`` extractor charged after each
            completed task (default: a numeric ``total_steps`` /
            ``steps_total`` attribute or mapping key, else 0).
        clock: injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        budget: CampaignBudget,
        priority_of: Callable[[Any], Priority] | None = None,
        steps_of: Callable[[Any], int] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget
        self._priority_of = priority_of
        self._steps_of = steps_of
        self._clock = clock
        self._started: float | None = None
        self.spent_steps = 0
        self.admitted = 0
        self.shed = 0
        self.decisions: list[AdmissionDecision] = []

    # -- load model ----------------------------------------------------------

    def priority(self, task: Any) -> Priority:
        if self._priority_of is not None:
            return Priority(self._priority_of(task))
        carried = getattr(task, "priority", None)
        if carried is not None:
            return Priority(carried)
        return Priority.NORMAL

    def pressure(self) -> float:
        """Peak utilisation across the budget's dimensions (0 = idle)."""
        loads = [0.0]
        if self.budget.max_steps is not None and self.budget.max_steps > 0:
            loads.append(self.spent_steps / self.budget.max_steps)
        if self.budget.max_tasks is not None and self.budget.max_tasks > 0:
            loads.append(self.admitted / self.budget.max_tasks)
        if (
            self.budget.max_wall_seconds is not None
            and self.budget.max_wall_seconds > 0
            and self._started is not None
        ):
            elapsed = self._clock() - self._started
            loads.append(elapsed / self.budget.max_wall_seconds)
        return max(loads)

    # -- the two verbs -------------------------------------------------------

    def admit(self, task: Any) -> AdmissionDecision:
        """Decide one task; records the decision and updates the counts."""
        if self._started is None:
            self._started = self._clock()
        priority = self.priority(task)
        pressure = self.pressure()
        if self.budget.unlimited:
            decision = AdmissionDecision(True, priority, pressure)
        elif pressure >= 1.0 and priority is not Priority.CRITICAL:
            decision = AdmissionDecision(
                False,
                priority,
                pressure,
                f"budget exhausted (pressure {pressure:.2f}); "
                f"only CRITICAL admitted, task is {priority.name}",
            )
        elif (
            pressure >= self.budget.soft_fraction
            and priority is Priority.BEST_EFFORT
        ):
            decision = AdmissionDecision(
                False,
                priority,
                pressure,
                f"load shedding (pressure {pressure:.2f} >= soft "
                f"{self.budget.soft_fraction:.2f}); BEST_EFFORT shed first",
            )
        else:
            decision = AdmissionDecision(True, priority, pressure)
        self.decisions.append(decision)
        if decision.admitted:
            self.admitted += 1
        else:
            self.shed += 1
        return decision

    def charge(self, result: Any) -> None:
        """Charge one completed result's cost against the step budget."""
        self.spent_steps += self._extract_steps(result)

    def _extract_steps(self, result: Any) -> int:
        if self._steps_of is not None:
            return int(self._steps_of(result))
        for name in ("total_steps", "steps_total"):
            value = getattr(result, name, None)
            if value is None and isinstance(result, dict):
                value = result.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return int(value)
        return 0

    def accounting(self) -> dict[str, Any]:
        """Observable controller state for reports and the dashboard."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "spent_steps": self.spent_steps,
            "pressure": self.pressure(),
        }
