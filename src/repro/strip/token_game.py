"""The unbounded token game (§4.1).

Each of n processes controls a token on the natural numbers, initially at 0;
a ``move_token_i`` step moves token ``i`` from ``r_i`` to ``r_i + 1``.  The
game abstracts the round numbers of the consensus protocol: token position =
round.  This module is the *unbounded* ground truth against which the
shrunken game and the graph game are validated.
"""

from __future__ import annotations


class TokenGame:
    """The plain (unbounded) token game."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one token")
        self.n = n
        self.positions = [0] * n
        self.moves: list[int] = []

    def move_token(self, i: int) -> None:
        """One ``move_token_i`` step: token ``i`` advances by one."""
        self.positions[i] += 1
        self.moves.append(i)

    def state(self) -> tuple[int, ...]:
        return tuple(self.positions)

    def gaps(self) -> list[int]:
        """Consecutive gaps of the sorted position multiset (n-1 values)."""
        ordered = sorted(self.positions)
        return [b - a for a, b in zip(ordered, ordered[1:])]

    def replay(self, moves: list[int]) -> "TokenGame":
        """Apply a sequence of moves (returns self for chaining)."""
        for i in moves:
            self.move_token(i)
        return self
