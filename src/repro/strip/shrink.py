"""``shrink_K`` and ``normalize_K`` (§4.1).

*Shrinking* compresses the token multiset: working up the sorted positions,
any gap strictly larger than K between consecutive tokens becomes exactly K,
while gaps ≤ K are preserved; the lowest token keeps its position.  The
intuition (Observation 1) is that the protocol never cares *how far* a
process trails once it trails by at least K, so larger gaps carry no
information.

*Normalizing* then translates everything so the maximal token sits at
``K·n``; after ``shrink_K`` the spread is at most ``K·(n-1) ≤ K·n``, so all
normalized positions lie in ``[0, K·n]`` — a bounded state space.

The *normalized shrunken game* applies both transformations after every
token move.  Its key property, **non-passive shrinking**, is: the distance
between two tokens that are ≤ K apart changes only when a token actually
moves (tested in the suite).
"""

from __future__ import annotations

from typing import Sequence

from repro.strip.token_game import TokenGame


def shrink_k(positions: Sequence[int], K: int) -> list[int]:
    """Cap the gaps of the sorted multiset at K; anchor at the minimum.

    Follows the inductive definition of §4.1: with ``π`` the ordering
    permutation, ``r'_{π(1)} = r_{π(1)}`` and ``r'_{π(k+1)} = r'_{π(k)} +
    min(gap_k, K)``.  Returns per-process positions (same indexing as the
    input).
    """
    if K < 1:
        raise ValueError("K must be >= 1")
    order = sorted(range(len(positions)), key=lambda i: (positions[i], i))
    shrunk = [0] * len(positions)
    previous_old = previous_new = None
    for i in order:
        if previous_old is None:
            shrunk[i] = positions[i]
        else:
            gap = positions[i] - previous_old
            shrunk[i] = previous_new + min(gap, K)
        previous_old, previous_new = positions[i], shrunk[i]
    return shrunk


def normalize_k(positions: Sequence[int], K: int) -> list[int]:
    """Translate so the maximal token sits at ``K·n``."""
    n = len(positions)
    top = max(positions)
    return [p - top + K * n for p in positions]


def shrink_normalize(positions: Sequence[int], K: int) -> list[int]:
    """``normalize_K(shrink_K(S))`` — all results lie in ``[0, K·n]``."""
    return normalize_k(shrink_k(positions, K), K)


class ShrunkenTokenGame:
    """The normalized shrunken game: bounded-state version of the token game.

    State is re-shrunk and re-normalized after every move, so positions
    always lie in ``[0, K·n]``.  This game *is* what the distance graph of
    §4.2 tracks: Claim 4.1 states that a ``move_token_i`` here corresponds
    exactly to ``inc(i, G)`` on the graph (tested property).

    Relative to the unbounded game the compression is deliberately lossy —
    once a process trails by ≥ K, a leader's move "pulls it along" (its gap
    is re-capped at K), so absolute distances are *underestimates*.  What is
    preserved, and what Observation 1 says the protocol needs, is: token
    order (with possible tie-merging), all gaps that were always < K, and
    the fact that a gap shown as K means "trails by at least K".  The
    *non-passive shrinking* property guarantees a gap ≤ K between a specific
    pair only ever decreases because the trailing token actually moved.
    """

    def __init__(self, n: int, K: int):
        if K < 1:
            raise ValueError("K must be >= 1")
        self.n = n
        self.K = K
        self.positions = normalize_k([0] * n, K)
        self.moves: list[int] = []

    def move_token(self, i: int) -> None:
        self.positions[i] += 1
        self.positions = shrink_normalize(self.positions, self.K)
        self.moves.append(i)

    def state(self) -> tuple[int, ...]:
        return tuple(self.positions)

    def replay(self, moves: list[int]) -> "ShrunkenTokenGame":
        for i in moves:
            self.move_token(i)
        return self

    @classmethod
    def from_unbounded(cls, game: TokenGame, K: int) -> "ShrunkenTokenGame":
        """Replay an unbounded game's move history through the shrunken game."""
        return cls(game.n, K).replay(game.moves)
