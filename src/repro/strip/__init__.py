"""The bounded rounds strip (§4 of the paper).

[AH88]'s protocol stores each process's *round number*, an unboundedly
growing integer.  The paper's Observation 1 is that the protocol never needs
absolute round numbers — only (a) relative distances capped at a constant K
and (b) the contributions to the K most recent coins.  This package builds
the bounded replacement in the paper's four stages:

1. :mod:`repro.strip.token_game` — the unbounded *token game* (each process
   moves its token up the naturals): ground truth.
2. :mod:`repro.strip.shrink` — the ``shrink_K`` / ``normalize_K``
   transformations and the *normalized shrunken game*, which keeps all
   token positions inside ``[0, K·n]``.
3. :mod:`repro.strip.distance_graph` — the *distance graph* representation
   ``G(S)`` (weights in ``{0..K}``) and the sequential ``inc(i, G)`` move,
   equivalent to a token move in the shrunken game (Claim 4.1).
4. :mod:`repro.strip.edge_counters` — the concurrent bounded implementation:
   per-pair edge counters that are pointers on a cycle of size ``3K``
   (all arithmetic mod 3K), with ``make_graph`` / ``inc_graph``.

:mod:`repro.strip.invariants` checks properties 1–5 of §4.2 and the
game/graph equivalence.
"""

from repro.strip.distance_graph import DistanceGraph
from repro.strip.edge_counters import EdgeCounters, decode_graph, inc_counters
from repro.strip.invariants import (
    InvariantViolation,
    check_graph_invariants,
    graphs_equal,
)
from repro.strip.shrink import (
    ShrunkenTokenGame,
    normalize_k,
    shrink_k,
    shrink_normalize,
)
from repro.strip.token_game import TokenGame

__all__ = [
    "DistanceGraph",
    "EdgeCounters",
    "InvariantViolation",
    "ShrunkenTokenGame",
    "TokenGame",
    "check_graph_invariants",
    "decode_graph",
    "graphs_equal",
    "inc_counters",
    "normalize_k",
    "shrink_k",
    "shrink_normalize",
]
