"""The distance graph ``G(S)`` (§4.2).

Given a state ``S`` of the (shrunken) token game, its distance graph is a
directed weighted graph on the n tokens with

- an edge ``(i, j)`` whenever ``r_i ≥ r_j`` (both directions iff tied), and
- weight ``w(i, j) = min(r_i - r_j, K)``.

Properties 1–5 of §4.2 follow (and are checked in
:mod:`repro.strip.invariants`): no positive cycles; path weights in
``[0, K·n]``; any two i→j paths have equal weight unless one contains a
saturated (weight-K) edge; and the *maximum*-weight path from i to j has
weight exactly ``r_i - r_j`` in the shrunken game.

The sequential move ``inc(i, G)`` — the graph image of ``move_token_i`` in
the normalized shrunken game (Claim 4.1) — is implemented here; the
concurrent bounded-counter representation lives in
:mod:`repro.strip.edge_counters`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_NEG_INF = float("-inf")


class DistanceGraph:
    """Directed weighted graph over n tokens, weights in ``{0..K}``."""

    def __init__(self, n: int, K: int):
        if K < 1:
            raise ValueError("K must be >= 1")
        self.n = n
        self.K = K
        # weights[(i, j)] = w(i, j) for present edges only.
        self.weights: dict[tuple[int, int], int] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_positions(cls, positions: Sequence[int], K: int) -> "DistanceGraph":
        """``G(S)`` for a game state ``S``."""
        graph = cls(len(positions), K)
        for i in range(graph.n):
            for j in range(graph.n):
                if i != j and positions[i] >= positions[j]:
                    graph.weights[(i, j)] = min(positions[i] - positions[j], K)
        return graph

    @classmethod
    def initial(cls, n: int, K: int) -> "DistanceGraph":
        """All tokens tied at 0: every pair carries two weight-0 edges."""
        return cls.from_positions([0] * n, K)

    def copy(self) -> "DistanceGraph":
        clone = DistanceGraph(self.n, self.K)
        clone.weights = dict(self.weights)
        return clone

    # -- basic queries ---------------------------------------------------------

    def has_edge(self, i: int, j: int) -> bool:
        return (i, j) in self.weights

    def weight(self, i: int, j: int) -> int:
        return self.weights[(i, j)]

    def edges(self) -> Iterable[tuple[int, int, int]]:
        for (i, j), w in sorted(self.weights.items()):
            yield i, j, w

    def successors(self, i: int) -> list[int]:
        return [j for (a, j) in self.weights if a == i]

    # -- distances ----------------------------------------------------------------

    def all_dists_to(self, target: int) -> list[float]:
        """``dist(k, target)`` for every k: maximum path weight into target.

        Longest-path relaxation; converges because the graph has no positive
        cycles (property 2), so cycles never improve a path.  Unreachable
        sources get ``-inf``.
        """
        dist: list[float] = [_NEG_INF] * self.n
        dist[target] = 0
        # Legal graphs converge within n-1 changing rounds (simple paths
        # have at most n-1 edges and zero cycles never improve anything),
        # so round n is always quiet; a positive cycle keeps changing.
        for _ in range(self.n + 1):
            changed = False
            for (u, v), w in self.weights.items():
                if dist[v] != _NEG_INF and dist[v] + w > dist[u]:
                    dist[u] = dist[v] + w
                    changed = True
            if not changed:
                break
        else:
            raise ValueError("positive cycle detected: not a legal distance graph")
        return dist

    def dist(self, i: int, j: int) -> float:
        """``dist(i, j)``: maximum weight over directed paths i → j."""
        return self.all_dists_to(j)[i]

    def all_dists_from(self, source: int) -> list[float]:
        """``dist(source, k)`` for every k (same relaxation, outgoing)."""
        dist: list[float] = [_NEG_INF] * self.n
        dist[source] = 0
        for _ in range(self.n + 1):
            changed = False
            for (u, v), w in self.weights.items():
                if dist[u] != _NEG_INF and dist[u] + w > dist[v]:
                    dist[v] = dist[u] + w
                    changed = True
            if not changed:
                break
        else:
            raise ValueError("positive cycle detected: not a legal distance graph")
        return dist

    def leaders(self) -> list[int]:
        """Processes that dominate everyone: ``(i, j) ∈ G`` for all j."""
        return [
            i
            for i in range(self.n)
            if all(self.has_edge(i, j) for j in range(self.n) if j != i)
        ]

    def edge_on_max_path_to(
        self, j: int, i: int, dists_to_i: list[float] | None = None
    ) -> bool:
        """Is edge ``(j, i)`` on some maximum-weight path ``k → i``?

        Edge ``(j, i)`` lies on a maximum path ``k → i`` iff
        ``dist(k, j) + w(j, i) = dist(k, i)`` with ``dist(k, j)`` finite;
        every source k is checked (``k = j`` covers the direct case).
        """
        if not self.has_edge(j, i):
            return False
        w = self.weights[(j, i)]
        dists_to_i = dists_to_i if dists_to_i is not None else self.all_dists_to(i)
        dists_to_j = self.all_dists_to(j)
        return any(
            dists_to_j[k] != _NEG_INF and dists_to_j[k] + w == dists_to_i[k]
            for k in range(self.n)
        )

    # -- the move ---------------------------------------------------------------

    def inc(self, i: int) -> "DistanceGraph":
        """``inc(i, G)``: the graph image of ``move_token_i`` (in place).

        For every other token j, conditions evaluated on the *pre-move*
        graph:

        - if j is (weakly) ahead of i and the edge ``(j, i)`` lies on a
          maximum path into i, token i closes that gap by one
          (``w(j, i) -= 1``; the max-path condition is what implements
          shrinking — a saturated gap that no longer reflects true distance
          is not closed);
        - otherwise, if i is ahead of j and not yet saturated
          (``w(i, j) < K``), i pulls further ahead (``w(i, j) += 1``).

        Afterwards, any edge driven below 0 is flipped, and tied pairs are
        given both weight-0 edges (property 1's normal form).
        """
        before = self.copy()
        for j in range(self.n):
            if j == i:
                continue
            if before.has_edge(j, i) and before.edge_on_max_path_to(j, i):
                self.weights[(j, i)] -= 1
            elif before.has_edge(i, j) and before.weights[(i, j)] < self.K:
                self.weights[(i, j)] += 1
        self._normalize()
        return self

    def _normalize(self) -> None:
        """Flip negative edges; materialise both edges of every tie."""
        for (j, i), w in list(self.weights.items()):
            if w < 0:
                del self.weights[(j, i)]
                self.weights[(i, j)] = -w
        for (j, i), w in list(self.weights.items()):
            if w == 0:
                self.weights[(i, j)] = 0

    # -- misc ----------------------------------------------------------------------

    def as_weight_matrix(self) -> list[list[float]]:
        """n×n matrix of edge weights (``None`` for absent edges)."""
        matrix: list[list[float]] = [
            [None] * self.n for _ in range(self.n)  # type: ignore[list-item]
        ]
        for (i, j), w in self.weights.items():
            matrix[i][j] = w
        return matrix

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceGraph):
            return NotImplemented
        return (self.n, self.K, self.weights) == (other.n, other.K, other.weights)

    def __repr__(self) -> str:
        edges = ", ".join(f"{i}->{j}:{w}" for i, j, w in self.edges())
        return f"DistanceGraph(n={self.n}, K={self.K}, {{{edges}}})"
