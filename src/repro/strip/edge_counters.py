"""Bounded concurrent representation of the distance graph (§4.3).

Property 1 of the distance graph implies the weights of the (undirected)
pairs determine the whole directed structure, so the graph is stored as a
collection of *edge counters*: process ``i`` keeps a row ``e_i[0..n-1]`` of
counters in ``{0 .. 3K-1}`` (``e_i[i]`` unused).  The pair
``(e_i[j], e_j[i])`` represents two pointers on a cycle of size ``3K``; by
incrementing ``e_i[j]`` (mod 3K) process ``i`` moves its pointer clockwise.

Decoding (``make_graph``): with ``d = (e_i[j] - e_j[i]) mod 3K``,

- ``d == 0``      → tied: both edges ``(i, j)`` and ``(j, i)``, weight 0;
- ``d <  3K - d`` → edge ``(i, j)`` with ``w(i, j) = d``;
- ``d >  3K - d`` → edge ``(j, i)`` with ``w(j, i) = 3K - d``.

Legal protocols keep every weight in ``{0..K}``; since ``K < 3K/2`` the
decoding is unambiguous (a ``d = 3K - d`` tie would be ill-formed and is
reported).  The slack factor 3 is what tolerates concurrency: processes
increment their rows based on *scanned* (serialized, P3) views, and between
a scan and the corresponding increment other rows advance by a bounded
amount, which the 3K cycle absorbs without wrapping ambiguity.

``inc_graph`` (the paper's procedure): process ``i`` increments ``e_i[j]``
exactly when the sequential move ``inc(i, G)`` would (a) close the gap to a
``j`` ahead of it whose edge lies on a maximum path into ``i``, or (b) push
further ahead of a ``j`` it already dominates with unsaturated weight —
one modular increment implements both, since raising ``e_i[j]`` moves ``i``
up by one *relative to j*.
"""

from __future__ import annotations

from typing import Sequence

from repro.strip.distance_graph import DistanceGraph


class IllFormedCounters(ValueError):
    """Counter pair decodes to an ambiguous direction (protocol bug)."""


def cycle_size(K: int) -> int:
    return 3 * K


def decode_graph(rows: Sequence[Sequence[int]], K: int) -> DistanceGraph:
    """The paper's ``make_graph``: counters → distance graph."""
    n = len(rows)
    size = cycle_size(K)
    graph = DistanceGraph(n, K)
    for i in range(n):
        for j in range(i + 1, n):
            d_ij = (rows[i][j] - rows[j][i]) % size
            d_ji = (rows[j][i] - rows[i][j]) % size
            if d_ij == 0:
                graph.weights[(i, j)] = 0
                graph.weights[(j, i)] = 0
            elif d_ij < d_ji:
                graph.weights[(i, j)] = d_ij
            elif d_ji < d_ij:
                graph.weights[(j, i)] = d_ji
            else:
                raise IllFormedCounters(
                    f"pair ({i},{j}): counters {rows[i][j]}, {rows[j][i]} "
                    f"decode ambiguously (d = {d_ij} both ways, cycle {size})"
                )
    return graph


def inc_counters(i: int, rows: Sequence[Sequence[int]], K: int) -> list[int]:
    """The paper's ``inc_graph``: return process i's new counter row.

    ``rows`` is a (scanned) view of all processes' rows; only row ``i`` is
    recomputed — the caller writes it back as part of its single-writer
    cell.  ``e_i[j]`` is incremented (mod 3K) iff the sequential
    ``inc(i, G)`` move would act on the pair ``{i, j}``.
    """
    n = len(rows)
    size = cycle_size(K)
    graph = decode_graph(rows, K)
    dists_to_i = graph.all_dists_to(i)
    row = list(rows[i])
    for j in range(n):
        if j == i:
            continue
        closes_gap = graph.has_edge(j, i) and graph.edge_on_max_path_to(
            j, i, dists_to_i
        )
        pushes_ahead = graph.has_edge(i, j) and graph.weight(i, j) < K
        if closes_gap or pushes_ahead:
            row[j] = (row[j] + 1) % size
    return row


class EdgeCounters:
    """A sequential all-rows counter state (for tests and the game bridge).

    The consensus protocol stores each row inside the owner's scannable-
    memory cell; this helper owns all rows at once so the counter algebra
    can be exercised and property-tested without a simulation.
    """

    def __init__(self, n: int, K: int):
        self.n = n
        self.K = K
        self.rows = [[0] * n for _ in range(n)]

    def graph(self) -> DistanceGraph:
        return decode_graph(self.rows, self.K)

    def inc(self, i: int) -> None:
        """Apply process i's increment move to its own row."""
        self.rows[i] = inc_counters(i, self.rows, self.K)

    def max_counter(self) -> int:
        return max(max(row) for row in self.rows)
