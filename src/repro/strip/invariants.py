"""Invariant checkers for the rounds strip (§4.2 properties 1–5 etc.)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.strip.distance_graph import DistanceGraph

_NEG_INF = float("-inf")


@dataclass
class InvariantViolation:
    name: str
    description: str

    def __str__(self) -> str:
        return f"{self.name}: {self.description}"


def graphs_equal(a: DistanceGraph, b: DistanceGraph) -> bool:
    """Structural equality of two distance graphs."""
    return a == b


def check_graph_invariants(graph: DistanceGraph) -> list[InvariantViolation]:
    """Check §4.2 properties 1–4 on a distance graph.

    1. For any pair at least one direction is present; both iff both
       weights are 0.
    2. No positive cycles (also implies all weights are well-formed — a
       positive cycle would make ``dist`` diverge).
    3. All weights lie in ``{0..K}`` and all path weights in ``[0, K·n]``.
    4. Any two i→j paths have equal weight, or one of them contains a
       saturated (weight K) edge.
    """
    violations: list[InvariantViolation] = []
    n, K = graph.n, graph.K

    # Property 1 + weight ranges (part of 3).
    for i in range(n):
        for j in range(i + 1, n):
            fwd, bwd = graph.has_edge(i, j), graph.has_edge(j, i)
            if not fwd and not bwd:
                violations.append(
                    InvariantViolation("P4.1", f"pair ({i},{j}) has no edge at all")
                )
            if fwd and bwd:
                if graph.weight(i, j) != 0 or graph.weight(j, i) != 0:
                    violations.append(
                        InvariantViolation(
                            "P4.1",
                            f"pair ({i},{j}) has both edges with nonzero weight",
                        )
                    )
    for (i, j), w in graph.weights.items():
        if not 0 <= w <= K:
            violations.append(
                InvariantViolation("P4.3", f"edge ({i},{j}) weight {w} outside 0..{K}")
            )

    # Property 2: no positive cycle (dist computation raises on one).
    try:
        dists = {t: graph.all_dists_to(t) for t in range(n)}
    except ValueError as exc:
        violations.append(InvariantViolation("P4.2", str(exc)))
        return violations

    # Property 3: path weights bounded by K·n.
    for t in range(n):
        for k in range(n):
            d = dists[t][k]
            if d != _NEG_INF and not 0 <= d <= K * n:
                violations.append(
                    InvariantViolation(
                        "P4.3", f"dist({k},{t}) = {d} outside [0, {K * n}]"
                    )
                )

    # Property 4: path weights agree unless a saturated edge intervenes.
    violations.extend(_check_property_4(graph))
    return violations


def _enumerate_paths(graph: DistanceGraph, i: int, j: int) -> list[list[int]]:
    """All simple i→j paths (as vertex lists).  Exponential; test sizes only."""
    paths: list[list[int]] = []

    def extend(path: list[int]) -> None:
        tail = path[-1]
        if tail == j:
            paths.append(list(path))
            return
        for nxt in graph.successors(tail):
            if nxt not in path:
                path.append(nxt)
                extend(path)
                path.pop()

    extend([i])
    return paths


def _check_property_4(graph: DistanceGraph) -> list[InvariantViolation]:
    violations = []
    for i in range(graph.n):
        for j in range(graph.n):
            if i == j:
                continue
            paths = _enumerate_paths(graph, i, j)
            if len(paths) < 2:
                continue
            weights_and_saturation = []
            for path in paths:
                w = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
                saturated = any(
                    graph.weight(a, b) == graph.K for a, b in zip(path, path[1:])
                )
                weights_and_saturation.append((w, saturated, path))
            for a in range(len(paths)):
                for b in range(a + 1, len(paths)):
                    wa, sa, pa = weights_and_saturation[a]
                    wb, sb, pb = weights_and_saturation[b]
                    if wa != wb and not (sa or sb):
                        violations.append(
                            InvariantViolation(
                                "P4.4",
                                f"paths {pa} (w={wa}) and {pb} (w={wb}) from "
                                f"{i} to {j} differ without a saturated edge",
                            )
                        )
    return violations


def check_property_5(
    graph: DistanceGraph, positions: Sequence[int]
) -> list[InvariantViolation]:
    """Property 5: ``dist(i, j) = r_i - r_j`` whenever a path exists."""
    violations = []
    for i in range(graph.n):
        for j in range(graph.n):
            if i == j:
                continue
            d = graph.dist(i, j)
            if d == _NEG_INF:
                continue
            if d != positions[i] - positions[j]:
                violations.append(
                    InvariantViolation(
                        "P4.5",
                        f"dist({i},{j}) = {d} but positions differ by "
                        f"{positions[i] - positions[j]}",
                    )
                )
    return violations


def check_nonpassive_shrinking(
    before: Sequence[int], after: Sequence[int], mover: int, K: int
) -> list[InvariantViolation]:
    """Non-passive shrinking: a ≤K gap only closes by the trailer's own move.

    For a single ``move_token`` step from ``before`` to ``after`` by
    ``mover``: for any ordered pair (i, j) with ``0 <= r_i - r_j <= K``, if
    the gap decreased by one, then ``j`` must be the mover.
    """
    violations = []
    for i in range(len(before)):
        for j in range(len(before)):
            if i == j:
                continue
            gap_before = before[i] - before[j]
            gap_after = after[i] - after[j]
            if 0 <= gap_before <= K and gap_after == gap_before - 1 and mover != j:
                violations.append(
                    InvariantViolation(
                        "non-passive-shrinking",
                        f"gap ({i},{j}) shrank {gap_before}->{gap_after} "
                        f"but mover was {mover}",
                    )
                )
    return violations


def assert_no_violations(violations: list[InvariantViolation]) -> None:
    if violations:
        report = "\n".join(str(v) for v in violations)
        raise AssertionError(f"{len(violations)} invariant violations:\n{report}")
