"""Sub-atomic registers: safe and regular (Lamport [L86b]), and the
classic strengthening constructions.

The paper's register substrate is atomic, citing a decade of constructions
from weaker primitives ([L86b], [IL87], [BP87], [N87], [SAG87], [VA86],
[Bl87]).  This module models the two weaker register classes and two of the
classic strengthening steps, closing the chain safe → regular → atomic that
the atomic cells of :mod:`repro.registers.atomic` stand on:

- a **safe** register guarantees only that a read *not* overlapping any
  write returns the latest written value; an overlapping read may return
  *anything* in the domain;
- a **regular** register narrows that: an overlapping read returns either
  the old value or the value of some overlapping write — but consecutive
  reads may still exhibit new/old inversion (so regular is not atomic);
- :class:`RegularBitFromSafe` — Lamport's observation: a *bit* writer that
  skips the physical write when the value is unchanged makes a safe bit
  regular (garbage can only be returned while the value actually changes,
  and garbage from a binary domain is then old-or-new by definition);
- :class:`AtomicFromRegular` — a single-writer register: the writer
  attaches an unbounded sequence number; each reader returns the
  highest-sequence value it has ever seen, which forbids new/old inversion
  and yields atomicity (the unboundedness here is exactly the kind of
  thing the paper's program eliminates at the next level up — the bounded
  alternative is the handshake machinery of §2).

Non-atomicity is modelled honestly inside the interleaving simulator: a
weak write occupies *two* scheduling points (start, commit), and a read
that lands between them gets a weakly-specified result computed as a
deterministic function of the global step count — so the scheduler (and
hence the exhaustive explorer of :mod:`repro.verify`) fully controls the
nondeterminism, exactly like a real adversary choosing flicker values.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence, TYPE_CHECKING

from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class SafeRegister:
    """Single-writer safe register over a finite domain.

    A write takes two atomic steps (start, commit); a read overlapping the
    window returns an adversarially chosen domain value.
    """

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        domain: Sequence[Any],
        initial: Any,
        writer: int,
    ):
        if initial not in domain:
            raise ValueError("initial value must be in the domain")
        self.sim = sim
        self.name = name
        self.domain = domain
        self.writer = writer
        self._value = initial
        self._writing: Any = None  # in-flight value, None when quiescent
        sim.register_shared(name, self)

    def peek(self) -> Any:
        return self._value

    def _overlapping_read_value(self) -> Any:
        """Safe semantics: anything from the domain (scheduler-chosen)."""
        return self.domain[self.sim.step_count % len(self.domain)]

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        if ctx.pid != self.writer:
            raise PermissionError(f"{self.name}: pid {ctx.pid} is not the writer")
        if value not in self.domain:
            raise ValueError(f"{self.name}: {value!r} outside domain")
        span = ctx.begin_span("write", self.name, value)
        yield OpIntent(ctx.pid, "write-start", self.name, value)
        self._writing = value
        ctx.record("write-start", self.name, value)
        yield OpIntent(ctx.pid, "write-commit", self.name, value)
        self._value = value
        self._writing = None
        ctx.record("write-commit", self.name, value)
        ctx.end_span(span)

    def read(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        span = ctx.begin_span("read", self.name)
        yield OpIntent(ctx.pid, "read", self.name)
        if self._writing is not None:
            value = self._overlapping_read_value()
        else:
            value = self._value
        ctx.record("read", self.name, value)
        ctx.end_span(span, value)
        return value


class RegularRegister(SafeRegister):
    """Single-writer regular register: overlapping reads see old or new."""

    def _overlapping_read_value(self) -> Any:
        return self._value if self.sim.step_count % 2 == 0 else self._writing


class RegularBitFromSafe:
    """Lamport's regular bit from a safe bit: skip writes of equal value.

    The physical safe bit is only written when the logical value changes,
    so a read can return garbage only while the bit genuinely flips — and
    binary garbage is then necessarily the old or the new value: regular.
    """

    def __init__(self, sim: "Simulation", name: str, initial: int, writer: int):
        self.name = name
        self.writer = writer
        self._physical = SafeRegister(
            sim, f"{name}.safe", domain=[0, 1], initial=initial, writer=writer
        )
        self._last_written = initial  # writer-local knowledge
        sim.register_shared(name, self)

    def peek(self) -> int:
        return self._physical.peek()

    def write(self, ctx: ProcessContext, value: int) -> Generator[OpIntent, None, None]:
        if value not in (0, 1):
            raise ValueError("bit registers hold 0 or 1")
        span = ctx.begin_span("write", self.name, value)
        if value != self._last_written:
            yield from self._physical.write(ctx, value)
            self._last_written = value
        else:
            # A skipped write still takes one step (reading one's own
            # state is free, but the operation must be schedulable).
            yield OpIntent(ctx.pid, "write-skip", self.name, value)
            ctx.record("write-skip", self.name, value)
        ctx.end_span(span)

    def read(self, ctx: ProcessContext) -> Generator[OpIntent, None, int]:
        span = ctx.begin_span("read", self.name)
        value = yield from self._physical.read(ctx)
        ctx.end_span(span, value)
        return value


class AtomicFromRegular:
    """1-writer-1-reader atomic register from a regular one (Lamport).

    The writer writes ``(seq, value)`` pairs with an unbounded sequence
    number; the reader keeps the highest pair it has returned and never
    regresses.  Overlapping reads return old-or-new (regularity), and the
    monotonicity filter kills new/old inversion — together, atomicity.

    The filter is *reader-local*, so this is a **SWSR** construction: two
    different readers can still invert relative to each other (one returns
    the in-flight value, the other the old one) — the classic reason
    multi-reader atomicity needs readers that write (see [N87], [SAG87],
    [BP87]) or directly atomic cells, as used elsewhere in this library.
    The test-suite demonstrates the multi-reader inversion explicitly.
    """

    def __init__(self, sim: "Simulation", name: str, initial: Any, writer: int):
        self.name = name
        self.writer = writer
        pairs_domain = _TimestampDomain()
        self._physical = RegularRegister(
            sim, f"{name}.regular", domain=pairs_domain, initial=(0, initial),
            writer=writer,
        )
        self._seq = 0  # writer-local
        sim.register_shared(name, self)

    def peek(self) -> Any:
        return self._physical.peek()[1]

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        span = ctx.begin_span("write", self.name, value)
        self._seq += 1
        yield from self._physical.write(ctx, (self._seq, value))
        ctx.end_span(span)

    def read(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        span = ctx.begin_span("read", self.name)
        pair = yield from self._physical.read(ctx)
        key = f"atomic-from-regular:{self.name}"
        best = ctx.local.get(key)
        if best is None or pair[0] > best[0]:
            ctx.local[key] = pair
            best = pair
        ctx.end_span(span, best[1])
        return best[1]


class _TimestampDomain:
    """An 'infinite domain' stand-in: membership always true.

    Regular registers constrain overlapping reads to {old, new}, which the
    implementation draws explicitly, so the domain object is only used for
    membership checks on writes.
    """

    def __contains__(self, item: object) -> bool:
        return isinstance(item, tuple) and len(item) == 2

    def __iter__(self):  # pragma: no cover - safety net for choice()
        raise TypeError("timestamp domain is not enumerable")
