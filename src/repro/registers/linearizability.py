"""Linearizability checking for register histories.

A register history is a set of read/write operation executions with
real-time invocation/response instants.  The history is *linearizable*
(atomic, axioms B1–B5 of [L86c] / the definition of [H88]) iff there is a
total order of the operations that (a) extends the real-time precedence
order and (b) is legal for a register: every read returns the value of the
most recent preceding write (or the initial value if none).

The checker is a Wing–Gong style backtracking search with memoisation on
``(set of linearized ops, current register value)``.  It is exponential in
the worst case but comfortably handles the bounded scenarios and randomized
schedules used to validate the register constructions in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from repro.runtime.events import OpSpan

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class HistoryOp:
    """One operation execution in a register history."""

    op_id: int
    pid: int
    kind: str  # "read" or "write"
    value: Any  # value written, or value returned by the read
    invoke: int
    response: int

    def precedes(self, other: "HistoryOp") -> bool:
        return self.response < other.invoke


def history_from_spans(spans: Iterable[OpSpan]) -> list[HistoryOp]:
    """Convert completed trace spans of one register into a history.

    Write spans use ``span.argument`` as the value; read spans use
    ``span.result``.
    """
    ops = []
    for span in spans:
        if span.is_open:
            continue
        if span.kind not in (READ, WRITE):
            raise ValueError(f"not a register span: {span.kind}")
        value = span.argument if span.kind == WRITE else span.result
        ops.append(
            HistoryOp(
                op_id=span.span_id,
                pid=span.pid,
                kind=span.kind,
                value=value,
                invoke=span.invoke_step,
                response=span.response_step,  # type: ignore[arg-type]
            )
        )
    return ops


def check_register_history(
    ops: Sequence[HistoryOp], initial: Any = None
) -> list[int] | None:
    """Return a witness linearization (list of op_ids), or ``None``.

    ``None`` means the history is *not* linearizable with respect to atomic
    single-register semantics and the given initial value.
    """
    ops = list(ops)
    total = len(ops)
    if total == 0:
        return []
    index_of = {op.op_id: i for i, op in enumerate(ops)}
    # precedes[i] = bitmask of ops that must come before op i.
    must_precede = [0] * total
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i != j and a.precedes(b):
                must_precede[j] |= 1 << i

    full_mask = (1 << total) - 1
    failed: set[tuple[int, Hashable]] = set()

    def value_key(value: Any) -> Hashable:
        try:
            hash(value)
            return value
        except TypeError:
            return repr(value)

    order: list[int] = []

    def search(done_mask: int, current: Any) -> bool:
        if done_mask == full_mask:
            return True
        key = (done_mask, value_key(current))
        if key in failed:
            return False
        for i, op in enumerate(ops):
            bit = 1 << i
            if done_mask & bit:
                continue
            if must_precede[i] & ~done_mask:
                continue  # a real-time predecessor is not yet linearized
            if op.kind == READ:
                if op.value != current:
                    continue
                order.append(op.op_id)
                if search(done_mask | bit, current):
                    return True
                order.pop()
            else:
                order.append(op.op_id)
                if search(done_mask | bit, op.value):
                    return True
                order.pop()
        failed.add(key)
        return False

    if search(0, initial):
        assert len(order) == total and {index_of[o] for o in order} == set(range(total))
        return list(order)
    return None
