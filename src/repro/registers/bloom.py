"""Bounded two-writer register construction (after Bloom [Bl87]).

The paper's arrow registers ``A_ij`` are 2-writer-2-reader atomic registers,
for which it cites bounded constructions ([Bl87] among others).  This module
implements such a construction from 1-writer multi-reader atomic registers
using Bloom's tag-parity idea:

- writer 0 (the *copier*) writes its value together with a copy of writer
  1's current tag bit, making the two tags **equal**;
- writer 1 (the *inverter*) writes its value together with the complement
  of writer 0's current tag bit, making the two tags **differ**;

so in any quiescent state the tag parity identifies the most recent writer
(equal ⇒ writer 0, different ⇒ writer 1).

A reader collects both cells, computes the indicated writer from the tag
parity, and *re-reads the indicated cell*.  If the cell is unchanged (a
per-writer toggle bit makes consecutive writes by the same writer
distinguishable — the same device the paper adds to its ``V_i`` registers),
the indicated value is returned; if it changed, the writer wrote
concurrently with the read, and the freshly re-read value (which belongs to
a concurrent write) is returned instead.  A single re-read suffices: the
read is wait-free with exactly five base-register accesses.

The construction is validated in the tests by the linearizability checker
over (a) handcrafted adversarial schedules — including the classic stalled
reader scenario that defeats the naive two-read protocol — and (b) thousands
of randomized schedules.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.registers.atomic import AtomicRegister
from repro.registers.base import MemoryAudit
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation

# Cell layout: (value, tag, toggle)
_VALUE, _TAG, _TOGGLE = 0, 1, 2


class TwoWriterRegister:
    """A bounded 2-writer multi-reader register from SWMR atomic cells."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        writer0: int,
        writer1: int,
        initial: Any = None,
        audit: MemoryAudit | None = None,
    ):
        if writer0 == writer1:
            raise ValueError("the two writers must be distinct processes")
        self.name = name
        self.writer0 = writer0
        self.writer1 = writer1
        self.initial = initial
        # Initial tags differ, so the initial value is attributed to writer 1.
        self.cell0 = AtomicRegister(
            sim,
            f"{name}.cell0",
            initial=(initial, 0, 0),
            writers=[writer0],
            audit=audit,
        )
        self.cell1 = AtomicRegister(
            sim,
            f"{name}.cell1",
            initial=(initial, 1, 0),
            writers=[writer1],
            audit=audit,
        )
        self._toggle = {writer0: 0, writer1: 0}
        sim.register_shared(name, self)

    def peek(self) -> Any:
        """Current abstract value (test/adversary access)."""
        v0, t0, _ = self.cell0.peek()
        v1, t1, _ = self.cell1.peek()
        return v0 if t0 == t1 else v1

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """Two base accesses: read the other writer's tag, write own cell."""
        if ctx.pid == self.writer0:
            own, other, invert = self.cell0, self.cell1, False
        elif ctx.pid == self.writer1:
            own, other, invert = self.cell1, self.cell0, True
        else:
            raise PermissionError(
                f"process {ctx.pid} is not a writer of {self.name} "
                f"(writers: {self.writer0}, {self.writer1})"
            )
        span = ctx.begin_span("write", self.name, value)
        other_cell = yield from other.read(ctx)
        tag = other_cell[_TAG] ^ 1 if invert else other_cell[_TAG]
        self._toggle[ctx.pid] ^= 1
        yield from own.write(ctx, (value, tag, self._toggle[ctx.pid]))
        ctx.end_span(span)

    def read(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        """Five base accesses: collect both cells, re-read the indicated one."""
        span = ctx.begin_span("read", self.name)
        first0 = yield from self.cell0.read(ctx)
        first1 = yield from self.cell1.read(ctx)
        if first0[_TAG] == first1[_TAG]:
            indicated_cell, first = self.cell0, first0
        else:
            indicated_cell, first = self.cell1, first1
        again = yield from indicated_cell.read(ctx)
        # Unchanged cell: the indicated value was current at the re-read.
        # Changed cell: the indicated writer wrote during this read, and the
        # re-read value belongs to one of those concurrent writes.
        value = again[_VALUE]
        ctx.end_span(span, value)
        return value
