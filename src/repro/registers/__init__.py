"""Register layer.

The paper builds its scannable memory from two kinds of primitive registers
(§2.2): 1-writer-n-reader atomic registers ``V_i`` and 2-writer-2-reader
atomic "arrow" registers ``A_ij``, citing bounded constructions of such
registers from weaker primitives ([Bl87], [L86b], [IL87], [BP87], [N87],
[SAG87], [LV88], [VA86]).

This package provides:

- :mod:`repro.registers.atomic` — directly simulated atomic cells (SWMR /
  MWMR), the default substrate used by the protocols (atomicity holds by
  construction of the simulator);
- :mod:`repro.registers.bloom` — a bounded two-writer register construction
  from SWMR atomic registers in the style of Bloom [Bl87] (tag-parity
  writers, double-collect reader), validated by model checking in the tests;
- :mod:`repro.registers.vitanyi_awerbuch` — the classic unbounded-timestamp
  multi-writer construction ([VA86]-style) used as the *unbounded*
  comparator;
- :mod:`repro.registers.linearizability` — a Wing–Gong style linearizability
  checker for register histories, used by the test-suite to validate both
  constructions.
"""

from repro.registers.atomic import AtomicRegister, RegisterArray
from repro.registers.base import MemoryAudit, measure_magnitude
from repro.registers.bloom import TwoWriterRegister
from repro.registers.linearizability import check_register_history, history_from_spans
from repro.registers.vitanyi_awerbuch import UnboundedMultiWriterRegister
from repro.registers.weak import (
    AtomicFromRegular,
    RegularBitFromSafe,
    RegularRegister,
    SafeRegister,
)

__all__ = [
    "AtomicFromRegular",
    "AtomicRegister",
    "MemoryAudit",
    "RegisterArray",
    "RegularBitFromSafe",
    "RegularRegister",
    "SafeRegister",
    "TwoWriterRegister",
    "UnboundedMultiWriterRegister",
    "check_register_history",
    "history_from_spans",
    "measure_magnitude",
]
