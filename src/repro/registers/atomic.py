"""Directly simulated atomic registers.

In the interleaving simulator an atomic register is simply a cell whose read
and write each take effect at a single scheduling point, so atomicity holds
by construction.  These cells are the default substrate for the higher-level
constructions (the paper assumes atomic SWMR registers ``V_i`` and 2W2R
arrow registers ``A_ij``; bounded constructions of those from weaker
primitives live in :mod:`repro.registers.bloom` and are exercised separately
so that the protocol benchmarks stay fast).

Writer/reader restrictions are *checked*: a SWMR register raises if a
process other than its owner writes it, which catches protocol wiring bugs
early.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, TYPE_CHECKING

from repro.registers.base import MemoryAudit
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class AtomicRegister:
    """A simulated atomic register.

    Args:
        sim: owning simulation (the register registers itself under ``name``).
        name: unique name, used in traces and adversary introspection.
        initial: initial value.
        writers: pids allowed to write, or ``None`` for anyone (MWMR).
        audit: optional shared :class:`MemoryAudit` to report writes to.
    """

    __slots__ = (
        "sim",
        "name",
        "_value",
        "_prev_value",
        "writers",
        "audit",
        "_reads",
        "_writes",
        "_magnitude",
        "_read_intents",
    )

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        initial: Any = None,
        writers: Iterable[int] | None = None,
        audit: MemoryAudit | None = None,
    ):
        self.sim = sim
        self.name = name
        self._value = initial
        # Previous value, kept for the fault injector's stale reads
        # (regular-register semantics: a read may return the overwritten
        # value).  Mirrors the write history one step deep.
        self._prev_value = initial
        self.writers = frozenset(writers) if writers is not None else None
        self.audit = audit
        self._reads = sim.metrics.counter("registers.reads", register=name)
        self._writes = sim.metrics.counter("registers.writes", register=name)
        # Max-value-held gauges subsume the E6 memory audit for audited
        # registers; the audit's measurement is reused, never recomputed.
        self._magnitude = sim.metrics.gauge("memory.max_magnitude", register=name)
        # Read intents carry no payload, so one immutable intent per reader
        # pid serves every read of this register (reads dominate the step
        # mix — a scan is n reads per round — making this the single
        # biggest allocation site the cache removes).
        self._read_intents: dict[int, OpIntent] = {}
        if audit is not None:
            self._magnitude.set_max(audit.observe(name, initial))
        sim.register_shared(name, self)

    def peek(self) -> Any:
        """Adversary/test access to the current value (not a process step)."""
        return self._value

    def poke(self, value: Any) -> None:
        """Test-only direct mutation (not a process step)."""
        self._prev_value = self._value
        self._value = value

    def read(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        """Atomic read (one scheduling point).

        With a fault injector installed on the simulation, the *returned*
        value may be stale (the previous write's value) — the register's
        actual content is untouched, and the recorded event carries what
        the process really saw, so trace checkers judge the faulty
        behaviour, not the intent.
        """
        intent = self._read_intents.get(ctx.pid)
        if intent is None:
            intent = self._read_intents[ctx.pid] = OpIntent(
                ctx.pid, "read", self.name
            )
        yield intent
        value = self._value
        injector = self.sim.faults
        if injector is not None:
            value = injector.on_read(
                self.sim.step_count, ctx.pid, self.name, value, self._prev_value
            )
        self._reads.inc()
        if ctx.recording:
            ctx.record("read", self.name, value)
        return value

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """Atomic write (one scheduling point).

        The fault injector may drop the write (the cell keeps its old
        value) or corrupt the stored value.  Either way the writer believes
        it wrote ``value`` — the event records the intent, while the audit
        and the max-value gauges observe what actually landed (a corrupted
        value that blows the E6 bound is meant to be visible there).
        """
        if self.writers is not None and ctx.pid not in self.writers:
            raise PermissionError(
                f"process {ctx.pid} may not write register {self.name} "
                f"(writers: {sorted(self.writers)})"
            )
        yield OpIntent(ctx.pid, "write", self.name, value)
        stored = value
        lost = False
        injector = self.sim.faults
        if injector is not None:
            lost, stored = injector.on_write(
                self.sim.step_count, ctx.pid, self.name, value
            )
        self._writes.inc()
        if not lost:
            self._prev_value = self._value
            self._value = stored
            if self.audit is not None:
                self._magnitude.set_max(self.audit.observe(self.name, stored))
        if ctx.recording:
            ctx.record("write", self.name, value)


class RegisterArray:
    """A family of registers ``name[0] .. name[n-1]``.

    By default register ``i`` is single-writer (owned by pid ``i``), the
    layout used for the ``V_i`` registers of the scannable memory.
    """

    __slots__ = ("name", "registers")

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        initial: Any = None,
        single_writer: bool = True,
        audit: MemoryAudit | None = None,
    ):
        self.name = name
        self.registers = [
            AtomicRegister(
                sim,
                f"{name}[{i}]",
                initial=initial,
                writers=[i] if single_writer else None,
                audit=audit,
            )
            for i in range(n)
        ]

    def __getitem__(self, index: int) -> AtomicRegister:
        return self.registers[index]

    def __len__(self) -> int:
        return len(self.registers)

    def peek_all(self) -> list[Any]:
        return [r.peek() for r in self.registers]
