"""Unbounded-timestamp multi-writer register ([VA86]-style comparator).

The classic construction of an n-writer n-reader atomic register from
1-writer n-reader atomic registers: each writer owns a cell holding
``(seq, pid, value)``; a write collects all cells, picks ``max seq + 1``,
and writes its own cell; a read collects all cells and returns the value
with the lexicographically largest ``(seq, pid)`` tag.

Because the base cells are *multi-reader atomic*, a later read's collect
dominates an earlier read's collect cell-by-cell, which rules out new/old
inversion; the construction is linearizable (validated by the checker in
the tests).  Its defining flaw — and the reason it appears here — is the
unbounded ``seq`` field: this is precisely the kind of construct the paper
eliminates.  The memory audit of experiment E6 shows ``seq`` growing
linearly with the number of writes.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.registers.atomic import RegisterArray
from repro.registers.base import MemoryAudit
from repro.runtime.events import OpIntent
from repro.runtime.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.simulation import Simulation


class UnboundedMultiWriterRegister:
    """n-writer n-reader atomic register with unbounded timestamps."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        n: int,
        initial: Any = None,
        audit: MemoryAudit | None = None,
    ):
        self.name = name
        self.n = n
        self.initial = initial
        self.audit = audit or MemoryAudit()
        # Cell i holds (seq, pid, value); owned by pid i.
        self.cells = RegisterArray(
            sim, f"{name}.cell", n, initial=(0, -1, initial), audit=self.audit
        )
        sim.register_shared(name, self)

    def _collect(self, ctx: ProcessContext) -> Generator[OpIntent, None, list]:
        values = []
        for i in range(self.n):
            cell = yield from self.cells[i].read(ctx)
            values.append(cell)
        return values

    def peek(self) -> Any:
        """Current abstract value (test/adversary access)."""
        return max(self.cells.peek_all())[2]

    def write(self, ctx: ProcessContext, value: Any) -> Generator[OpIntent, None, None]:
        """Collect all tags, then write ``max seq + 1`` to own cell."""
        span = ctx.begin_span("write", self.name, value)
        cells = yield from self._collect(ctx)
        seq = max(c[0] for c in cells) + 1
        yield from self.cells[ctx.pid].write(ctx, (seq, ctx.pid, value))
        ctx.end_span(span)

    def read(self, ctx: ProcessContext) -> Generator[OpIntent, None, Any]:
        """Collect all cells; return the value with the largest tag."""
        span = ctx.begin_span("read", self.name)
        cells = yield from self._collect(ctx)
        value = max(cells)[2]
        ctx.end_span(span, value)
        return value
