"""Shared definitions for the register layer.

Includes the memory audit used by experiment E6: the headline claim of the
paper is *boundedness*, so the audit measures, for every shared register,
the largest integer magnitude and the largest structure ever stored in it.
A bounded protocol's audit numbers are independent of the run length; an
unbounded protocol's grow without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def slot_items(value: Any) -> list[tuple[str, Any]] | None:
    """``(name, value)`` pairs of a ``__slots__``-only object, else ``None``.

    The audit measurers and the trace exporter treat an object's attributes
    as its contents; for slotted classes (no per-instance ``__dict__``) the
    slot names across the MRO play the role ``vars()`` plays for ordinary
    objects.  Unset slots are skipped, mirroring how they would simply be
    absent from a ``__dict__``.
    """
    names: list[str] = []
    for klass in type(value).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    if not names:
        return None
    sentinel = object()
    return [
        (name, attr)
        for name in names
        if (attr := getattr(value, name, sentinel)) is not sentinel
    ]


def measure_magnitude(value: Any) -> int:
    """Largest absolute integer found anywhere inside ``value``.

    Descends through tuples, lists, dicts and dataclass-like objects (via
    ``__dict__`` or ``__slots__``).  Booleans and ``None`` count as 0;
    strings count as 0 (they are labels, not counters).  Iterative — an
    explicit work stack instead of recursion — because the audit runs on
    every audited register write.
    """
    best = 0
    stack = [value]
    while stack:
        v = stack.pop()
        if v is None or isinstance(v, (str, bytes, bool)):
            continue
        if isinstance(v, int):
            if v < 0:
                v = -v
            if v > best:
                best = v
        elif isinstance(v, float):
            a = int(abs(v))
            if a > best:
                best = a
        elif isinstance(v, dict):
            stack.extend(v.keys())
            stack.extend(v.values())
        elif isinstance(v, (tuple, list, set, frozenset)):
            stack.extend(v)
        elif hasattr(v, "__dict__"):
            stack.extend(vars(v).values())
        else:
            items = slot_items(v)
            if items is not None:
                stack.extend(attr for _, attr in items)
    return best


def measure_width(value: Any) -> int:
    """Number of atomic leaves inside ``value`` (structure size).

    Empty containers count as one leaf; non-empty containers contribute
    the sum of their elements' widths.  Iterative, like
    :func:`measure_magnitude`, and with the same ``__slots__`` handling so
    a slotted cell measures exactly as its ``__dict__`` twin would.
    """
    total = 0
    stack = [value]
    while stack:
        v = stack.pop()
        if v is None or isinstance(v, (bool, int, float, str, bytes)):
            total += 1
        elif isinstance(v, dict):
            if v:
                stack.extend(v.values())
            else:
                total += 1
        elif isinstance(v, (tuple, list, set, frozenset)):
            if v:
                stack.extend(v)
            else:
                total += 1
        elif hasattr(v, "__dict__"):
            d = vars(v)
            if d:
                stack.extend(d.values())
            else:
                total += 1
        elif (items := slot_items(v)) is not None:
            if items:
                stack.extend(attr for _, attr in items)
            else:
                total += 1
        else:
            total += 1
    return total


@dataclass
class MemoryAudit:
    """Running audit of the values stored in a register (or a family).

    Attributes:
        max_magnitude: largest ``|int|`` ever stored.
        max_width: widest structure ever stored.
        writes: number of write operations audited.
    """

    max_magnitude: int = 0
    max_width: int = 0
    writes: int = 0
    per_target: dict[str, int] = field(default_factory=dict)

    def observe(self, target: str, value: Any) -> int:
        """Audit one stored value; returns its measured magnitude so
        callers (e.g. the register layer's metrics gauges) need not
        re-measure."""
        magnitude = measure_magnitude(value)
        self.max_magnitude = max(self.max_magnitude, magnitude)
        self.max_width = max(self.max_width, measure_width(value))
        self.writes += 1
        if magnitude > self.per_target.get(target, -1):
            self.per_target[target] = magnitude
        return magnitude

    def merge(self, other: "MemoryAudit") -> "MemoryAudit":
        merged = MemoryAudit(
            max_magnitude=max(self.max_magnitude, other.max_magnitude),
            max_width=max(self.max_width, other.max_width),
            writes=self.writes + other.writes,
        )
        merged.per_target = dict(self.per_target)
        for target, magnitude in other.per_target.items():
            merged.per_target[target] = max(
                merged.per_target.get(target, -1), magnitude
            )
        return merged
