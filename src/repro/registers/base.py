"""Shared definitions for the register layer.

Includes the memory audit used by experiment E6: the headline claim of the
paper is *boundedness*, so the audit measures, for every shared register,
the largest integer magnitude and the largest structure ever stored in it.
A bounded protocol's audit numbers are independent of the run length; an
unbounded protocol's grow without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def measure_magnitude(value: Any) -> int:
    """Largest absolute integer found anywhere inside ``value``.

    Recurses through tuples, lists, dicts and dataclass-like objects (via
    ``__dict__``).  Booleans and ``None`` count as 0; strings count as 0
    (they are labels, not counters).
    """
    if value is None or isinstance(value, (str, bytes, bool)):
        return 0
    if isinstance(value, int):
        return abs(value)
    if isinstance(value, float):
        return int(abs(value))
    if isinstance(value, dict):
        parts = list(value.keys()) + list(value.values())
        return max((measure_magnitude(v) for v in parts), default=0)
    if isinstance(value, (tuple, list, set, frozenset)):
        return max((measure_magnitude(v) for v in value), default=0)
    if hasattr(value, "__dict__"):
        return measure_magnitude(vars(value))
    return 0


def measure_width(value: Any) -> int:
    """Number of atomic leaves inside ``value`` (structure size)."""
    if isinstance(value, dict):
        return sum(measure_width(v) for v in value.values()) or 1
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(measure_width(v) for v in value) or 1
    if hasattr(value, "__dict__") and not isinstance(value, (str, bytes)):
        return measure_width(vars(value))
    return 1


@dataclass
class MemoryAudit:
    """Running audit of the values stored in a register (or a family).

    Attributes:
        max_magnitude: largest ``|int|`` ever stored.
        max_width: widest structure ever stored.
        writes: number of write operations audited.
    """

    max_magnitude: int = 0
    max_width: int = 0
    writes: int = 0
    per_target: dict[str, int] = field(default_factory=dict)

    def observe(self, target: str, value: Any) -> int:
        """Audit one stored value; returns its measured magnitude so
        callers (e.g. the register layer's metrics gauges) need not
        re-measure."""
        magnitude = measure_magnitude(value)
        self.max_magnitude = max(self.max_magnitude, magnitude)
        self.max_width = max(self.max_width, measure_width(value))
        self.writes += 1
        if magnitude > self.per_target.get(target, -1):
            self.per_target[target] = magnitude
        return magnitude

    def merge(self, other: "MemoryAudit") -> "MemoryAudit":
        merged = MemoryAudit(
            max_magnitude=max(self.max_magnitude, other.max_magnitude),
            max_width=max(self.max_width, other.max_width),
            writes=self.writes + other.writes,
        )
        merged.per_target = dict(self.per_target)
        for target, magnitude in other.per_target.items():
            merged.per_target[target] = max(
                merged.per_target.get(target, -1), magnitude
            )
        return merged
