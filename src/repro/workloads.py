"""Shared workload builders: one definition of each campaign shape.

The CLI (:mod:`repro.cli`) and the simulation service
(:mod:`repro.serve`) must run *the same* workload for the same
parameters — the run ledger content-addresses every cell by (seed,
config, code version), so two entry points that disagree about a default
or an experiment label would fingerprint the same work differently and
never share cache hits.  This module is the single source of those
shapes:

- :data:`PROTOCOLS` — the protocol menu every entry point exposes;
- :func:`make_scheduler` — the named scheduler/adversary table;
- :func:`build_sweep` — the canonical protocol-vs-n sweep
  (``repro sweep`` and serve ``{"kind": "sweep"}`` jobs both call it, so
  a sweep submitted over HTTP writes ledger bytes identical to the same
  sweep run through the CLI);
- :data:`CHAOS_EXPERIMENTS` — the experiment labels of the three chaos
  stages (mutation campaign + recovery fuzz + fault fuzz), shared by
  ``repro chaos`` and serve ``{"kind": "chaos"}`` jobs.

Everything here is import-light so the serve dispatcher can load it in a
thread without dragging the argparse layer along.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.consensus import (
    AdsConsensus,
    AspnesHerlihyConsensus,
    AtomicCoinConsensus,
    BoundedLocalCoinConsensus,
    LocalCoinConsensus,
    validate_run,
)
from repro.consensus.ads import pref_reader
from repro.runtime import (
    RandomScheduler,
    RoundRobinScheduler,
    SplitAdversary,
)
from repro.runtime.adversary import LockstepAdversary

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.experiment import Sweep
    from repro.obs.ledger import RunLedger
    from repro.resilience.policy import FailurePolicy

#: The user-facing protocol menu (name → class), shared by every entry
#: point so "ads" means the same protocol everywhere.
PROTOCOLS = {
    "ads": AdsConsensus,
    "aspnes-herlihy": AspnesHerlihyConsensus,
    "local-coin": LocalCoinConsensus,
    "bounded-local-coin": BoundedLocalCoinConsensus,
    "atomic-coin": AtomicCoinConsensus,
}

#: The named schedulers/adversaries accepted by ``--scheduler`` flags and
#: serve job specs.
SCHEDULERS = ("random", "round-robin", "split", "lockstep")

#: Sweep metrics a run can be reduced to.
SWEEP_METRICS = ("steps", "rounds")

#: Default cell parameters of the canonical sweep — the CLI flag defaults
#: and the serve spec defaults are both this dict, so an empty HTTP spec
#: and a bare ``repro sweep`` name identical cells.
SWEEP_DEFAULTS: dict[str, Any] = {
    "protocol": "ads",
    "n_values": [2, 3, 4],
    "reps": 10,
    "seed_base": 0,
    "scheduler": "random",
    "metric": "steps",
    "max_steps": 50_000_000,
}

#: Experiment labels of the three ``repro chaos`` stages.  Serve chaos
#: jobs use the same labels so their ledger cells cache-hit CLI runs.
CHAOS_EXPERIMENTS = {
    "campaign": "chaos:campaign",
    "recovery": "chaos:recovery",
    "faults": "chaos:faults",
}


def make_scheduler(name: str, seed: int):
    """Instantiate a named scheduler/adversary for one seeded run."""
    if name == "random":
        return RandomScheduler(seed=seed)
    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "split":
        return SplitAdversary(pref_reader, seed=seed)
    if name == "lockstep":
        return LockstepAdversary("mem", seed=seed)
    raise ValueError(f"unknown scheduler: {name}")


def sweep_experiment(protocol: str, metric: str) -> str:
    """The ledger experiment label of a canonical sweep."""
    return f"sweep:{protocol}:{metric}"


def make_sweep_runner(
    protocol: str, scheduler: str, metric: str, max_steps: int
) -> Callable[[int, int], float]:
    """The per-cell function of the canonical sweep: ``(n, seed) → value``.

    Each cell builds its own protocol instance and scheduler from its own
    seed (no shared state), validates safety, and reduces the run to one
    number — total steps or max rounds.  An unsafe run raises: a sweep
    must never average over violations.
    """

    def run_once(n: int, seed: int) -> float:
        instance = PROTOCOLS[protocol]()
        inputs = [(seed + i) % 2 for i in range(n)]
        run = instance.run(
            inputs,
            scheduler=make_scheduler(scheduler, seed),
            seed=seed,
            max_steps=max_steps,
        )
        report = validate_run(run)
        if not report.ok:
            raise RuntimeError(
                f"unsafe run (n={n}, seed={seed}): " + "; ".join(report.problems)
            )
        return float(run.max_rounds() if metric == "rounds" else run.total_steps)

    if protocol == "ads" and scheduler == "random":
        # Opt the canonical cell into the fused batch interpreter (see
        # repro.batch): default ADS under the random scheduler is exactly
        # the fast path, and the engine reproduces the serial RNG streams
        # bit-for-bit.  Any lane the engine cannot interpret (n < 2, odd
        # counter states, an exhausted budget) re-runs through run_once,
        # reproducing the serial result or exception unchanged.
        from repro.batch import LaneSpec

        def batch_lane(task):
            n, seed = task
            if n < 2:
                return None
            return LaneSpec(
                inputs=tuple((seed + i) % 2 for i in range(n)),
                seed=seed,
                max_steps=max_steps,
            )

        def batch_value(task, lane):
            n, seed = task
            decided = set(lane.decisions.values())
            # validate_run's four checks on a crash-free run: agreement,
            # validity/domain (decisions drawn from the inputs), and
            # completion (every process decided).  Any violation falls
            # back to run_once, which raises the serial "unsafe run"
            # error with the full report.
            if (
                len(decided) > 1
                or not decided <= set(lane.spec.inputs)
                or len(lane.decisions) != n
            ):
                return None
            return float(
                lane.max_rounds() if metric == "rounds" else lane.total_steps
            )

        run_once.batch_lane = batch_lane
        run_once.batch_value = batch_value

    return run_once


def build_sweep(
    protocol: str = "ads",
    n_values: Sequence[int] = (2, 3, 4),
    reps: int = 10,
    seed_base: int = 0,
    scheduler: str = "random",
    metric: str = "steps",
    max_steps: int = 50_000_000,
    *,
    ledger: "RunLedger | None" = None,
    policy: "FailurePolicy | None" = None,
    task_timeout: float | None = None,
    metrics: Any = None,
    batch_size: int | None = None,
) -> "Sweep":
    """The canonical protocol sweep, identically configured everywhere.

    Both ``repro sweep`` and serve sweep jobs execute the object this
    returns, so the ledger records it checkpoints — experiment label,
    cell configs, fingerprints — are byte-identical across entry points.
    """
    from repro.analysis.experiment import Sweep

    return Sweep(
        "n",
        list(n_values),
        make_sweep_runner(protocol, scheduler, metric, max_steps),
        repetitions=reps,
        seed_base=seed_base,
        ledger=ledger,
        experiment=sweep_experiment(protocol, metric),
        config={
            "protocol": protocol,
            "scheduler": scheduler,
            "metric": metric,
            "max_steps": max_steps,
        },
        policy=policy,
        task_timeout=task_timeout,
        metrics=metrics,
        batch_size=batch_size,
    )
